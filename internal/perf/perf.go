// Package perf is the paper-scale performance model: it projects the
// coupled Earth system's throughput τ (simulated days per day) for any
// (system, configuration, superchip count) triple, using a four-term
// per-step cost,
//
//	t_step = T0 + c·wc + P/c + ν·n
//
// where c is cells per chip and n the chip count:
//
//   - T0  — fixed per-step cost (kernel launches + saturation floor),
//   - wc  — per-cell cost at full bandwidth (memory-bound roofline),
//   - P/c — sub-occupancy penalty: per-cell cost rises when too few cells
//     remain per GPU (the paper's flattening at ~10 800 cells/GPU),
//   - ν·n — system-noise/global-communication degradation that grows with
//     the rank count (Hoefler et al. 2010; the §7 large-scale roll-off).
//
// The four parameters are calibrated against the paper's published anchor
// points (Calibrate solves the 4×4 linear system exactly):
//
//	τ = 32.7 @ 2048, 59.5 @ 4096, 145.7 @ 20480 superchips (1.25 km,
//	JUPITER, Figure 4 left) and τ ≈ 167 @ 384 superchips (10 km with the
//	1.25 km timestep, the weak-scaling reference).
//
// Alps' larger noise coefficient is calibrated from its τ = 91.8 @ 8192.
// Everything else in the package — Figure 2, Figure 4 right, Table 1's τ*,
// the τ-limit analysis, the energy comparison — is *predicted* by the same
// model, not fitted.
package perf

import (
	"fmt"
	"math"

	"icoearth/internal/config"
	"icoearth/internal/machine"
)

// Params are the calibrated model parameters for a GH200 superchip
// reference.
type Params struct {
	T0 float64 // s per step
	Wc float64 // s per cell per step (90-level column, all components on chip)
	P  float64 // s·cells (sub-occupancy penalty)

	// Per-system noise coefficients (s per rank per step).
	Noise map[string]float64

	// OceanBytesPerCell is the effective ocean+BGC traffic per ocean cell
	// per *ocean* step on the host CPU, tuned so the CPU side stays just
	// below the GPU side (§5.1.1 load balancing).
	OceanBytesPerCell float64
	// CGIterations is the barotropic solver iteration count entering the
	// global-communication term.
	CGIterations int

	// LandGraphShare is the land fraction of the GPU-side step time with
	// CUDA Graphs enabled; LandNoGraphFactor is the slowdown of the land
	// part without graphs (§5.1: 8–10×).
	LandGraphShare    float64
	LandNoGraphFactor float64
}

// anchor is one published (n, τ, cellsPerChip, dt) point.
type anchor struct {
	n     int
	tau   float64
	cells float64
	dt    float64
}

// jupiterAnchors are the Figure 4 strong-scaling points (1.25 km) plus the
// 10 km weak-scaling reference with the 1.25 km timestep.
func jupiterAnchors() []anchor {
	oneKm := config.OneKm()
	tenKm := config.TenKm()
	return []anchor{
		{2048, 32.7, oneKm.AtmosCells(), 10},
		{4096, 59.5, oneKm.AtmosCells(), 10},
		{20480, 145.7, oneKm.AtmosCells(), 10},
		{384, 167, tenKm.AtmosCells(), 10},
	}
}

// Calibrate solves the 4-parameter model exactly against the four JUPITER
// anchors, then fits the Alps noise coefficient from its 8192-chip point.
func Calibrate() Params {
	an := jupiterAnchors()
	// Linear system rows: [1, c, 1/c, n] · [T0, wc, P, ν] = dt/τ.
	var a [4][5]float64
	for i, p := range an {
		c := p.cells / float64(p.n)
		a[i][0] = 1
		a[i][1] = c
		a[i][2] = 1 / c
		a[i][3] = float64(p.n)
		a[i][4] = p.dt / p.tau
	}
	x := solve4(a)
	prm := Params{
		T0: x[0], Wc: x[1], P: x[2],
		Noise: map[string]float64{
			"JUPITER": x[3],
			"JEDI":    x[3],
		},
		CGIterations:      80,
		LandGraphShare:    0.08,
		LandNoGraphFactor: 9,
	}
	// Alps: τ = 91.8 at 8192 chips (1.25 km).
	oneKm := config.OneKm()
	cAlps := oneKm.AtmosCells() / 8192
	tTarget := 10.0 / 91.8
	prm.Noise["Alps"] = (tTarget - prm.T0 - cAlps*prm.Wc - prm.P/cAlps) / 8192
	// Levante: same noise class as JUPITER for the GPU partition; the CPU
	// partition runs fewer, fatter ranks.
	prm.Noise["Levante-GPU"] = x[3]
	prm.Noise["Levante-CPU"] = x[3]
	// Ocean+BGC on the Grace CPU: tuned to 85% of the GPU-side time at the
	// tightest anchor (2048 chips), the paper's load-balancing target.
	grace := machine.GraceCPU()
	tAtm := prm.stepTimeGPU(machine.JUPITER(), oneKm.AtmosCells(), 2048, true)
	ocStepsPerAtm := oneKm.OceanDt() / oneKm.AtmosDt()
	cellsOc := oneKm.OceanCells() / 2048
	prm.OceanBytesPerCell = 0.85 * tAtm * ocStepsPerAtm * grace.MemBW / cellsOc
	return prm
}

// solve4 performs Gaussian elimination with partial pivoting on a 4×5
// augmented matrix.
func solve4(a [4][5]float64) [4]float64 {
	for col := 0; col < 4; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < 5; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	var x [4]float64
	for r := 3; r >= 0; r-- {
		v := a[r][4]
		for k := r + 1; k < 4; k++ {
			v -= a[r][k] * x[k]
		}
		x[r] = v / a[r][r]
	}
	return x
}

// DefaultParams returns the calibrated parameters (computed once).
var defaultParams *Params

func DefaultParams() Params {
	if defaultParams == nil {
		p := Calibrate()
		defaultParams = &p
	}
	return *defaultParams
}

// gpuScale returns the cost multiplier of a system's accelerator relative
// to the GH200 reference (bandwidth-bound: inverse bandwidth ratio).
func gpuScale(sys machine.System) float64 {
	if sys.CPUOnly {
		return machine.HopperGPU().MemBW / sys.Chip.CPU.MemBW
	}
	return machine.HopperGPU().MemBW / sys.Chip.GPU.MemBW
}

// noise returns the system's per-rank noise coefficient.
func (p Params) noise(sys machine.System) float64 {
	if v, ok := p.Noise[sys.Name]; ok {
		return v
	}
	return p.Noise["JUPITER"]
}

// stepTimeGPU returns the GPU-side (atmosphere+land) time per atmosphere
// step on n chips.
func (p Params) stepTimeGPU(sys machine.System, atmosCells float64, n int, graphs bool) float64 {
	c := atmosCells / float64(n)
	scale := gpuScale(sys)
	t := p.T0 + scale*(c*p.Wc+p.P/c) + p.noise(sys)*float64(n)
	if sys.CPUOnly {
		// CPU execution: no launch-latency floor, caches hide the
		// sub-occupancy penalty (§4: "increased cache efficiency partially
		// offsets the lack of computation").
		t = 0.005 + scale*c*p.Wc + p.noise(sys)*float64(n)
	}
	if !graphs && !sys.CPUOnly {
		// Without CUDA Graphs the land/vegetation part slows 8–10×.
		t *= 1 + p.LandGraphShare*(p.LandNoGraphFactor-1)
	}
	return t
}

// stepTimeOcean returns the CPU-side (ocean+sea-ice+BGC) time per *ocean*
// step on n superchips (Grace CPUs), including the barotropic solver's
// global reductions.
func (p Params) stepTimeOcean(sys machine.System, oceanCells float64, n int) float64 {
	c := oceanCells / float64(n)
	grace := sys.Chip.CPU
	t := c * p.OceanBytesPerCell / grace.MemBW
	// Global CG reductions: 2 allreduces per iteration, log-tree latency
	// (the machine's noise term is already charged on the GPU side per
	// step; here only the tree latency enters).
	stages := int(math.Ceil(math.Log2(float64(n + 1))))
	t += float64(p.CGIterations) * 2 * float64(stages) * sys.Net.AllreduceLatency
	return t
}

// Result summarises one projected configuration point.
type Result struct {
	System     string
	Superchips int
	Model      string
	// Per-atmosphere-step times (seconds).
	GPUStep, OceanPerAtmStep float64
	// Achieved temporal compression.
	Tau float64
	// CouplingWaitFrac is the fraction of GPU time lost waiting for the
	// ocean (0 when the ocean hides completely).
	CouplingWaitFrac float64
	// PowerMW is the machine section's electrical power (MW).
	PowerMW float64
}

// Project computes the coupled throughput of configuration m on n
// superchips of sys.
func Project(sys machine.System, m config.Model, n int) Result {
	return ProjectOpt(sys, m, n, true)
}

// ProjectOpt allows disabling the land CUDA-Graph optimisation.
func ProjectOpt(sys machine.System, m config.Model, n int, landGraphs bool) Result {
	p := DefaultParams()
	tGPU := p.stepTimeGPU(sys, m.AtmosCells(), n, landGraphs)
	ocPerAtm := 0.0
	if !sys.CPUOnly {
		ocStepsPerAtm := m.AtmosDt() / m.OceanDt() // <1: ocean steps less often
		tOc := p.stepTimeOcean(sys, m.OceanCells(), n)
		ocPerAtm = tOc * ocStepsPerAtm
	}
	// The coupled step advances at the pace of the slower side.
	tStep := math.Max(tGPU, ocPerAtm)
	wait := 0.0
	if ocPerAtm > tGPU {
		wait = (ocPerAtm - tGPU) / ocPerAtm
	}
	tau := m.AtmosDt() / tStep
	// Power per chip: a CPU node draws its package power; a GH200-style
	// superchip is capped by the shared TDP (the CPU-side ocean pushes the
	// combined draw against it); a discrete-GPU node (Levante) adds the
	// GPU's draw to its share of the host.
	var chipPower float64
	switch {
	case sys.CPUOnly:
		chipPower = sys.Chip.CPU.PowerMax
	case sys.Chip.TDP < sys.Chip.GPU.PowerMax+sys.Chip.CPU.PowerMax:
		chipPower = sys.Chip.TDP
	default:
		chipPower = sys.Chip.GPU.PowerMax + sys.Chip.CPU.PowerMax/float64(sys.SuperchipsPerNode)
	}
	return Result{
		System:           sys.Name,
		Superchips:       n,
		Model:            m.Name,
		GPUStep:          tGPU,
		OceanPerAtmStep:  ocPerAtm,
		Tau:              tau,
		CouplingWaitFrac: wait,
		PowerMW:          float64(n) * chipPower / 1e6,
	}
}

// TauStar rescales a throughput measured at grid spacing dx to the
// expected value at 1.25 km on the same resource: τ* = (1.25/Δx)³·τ
// (the paper's Table 1).
func TauStar(tau, dxKm float64) float64 {
	r := 1.25 / dxKm
	return r * r * r * tau
}

// EnergyToSolution returns the electrical energy (J) to simulate simDays
// of configuration m on n superchips of sys.
func EnergyToSolution(sys machine.System, m config.Model, n int, simDays float64) float64 {
	r := Project(sys, m, n)
	wallSeconds := simDays * 86400 / r.Tau
	return r.PowerMW * 1e6 * wallSeconds
}

// MatchThroughput finds the superchip count of sys needed to reach at
// least the target τ with configuration m (or maxN if unreachable).
func MatchThroughput(sys machine.System, m config.Model, targetTau float64, maxN int) int {
	lo, hi := 1, maxN
	if Project(sys, m, hi).Tau < targetTau {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if Project(sys, m, mid).Tau >= targetTau {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (r Result) String() string {
	return fmt.Sprintf("%s %s n=%d: τ=%.1f (gpu %.4fs, ocean %.4fs, wait %.0f%%, %.2f MW)",
		r.System, r.Model, r.Superchips, r.Tau, r.GPUStep, r.OceanPerAtmStep,
		100*r.CouplingWaitFrac, r.PowerMW)
}
