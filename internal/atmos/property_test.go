package atmos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"icoearth/internal/grid"
	"icoearth/internal/vertical"
)

// TestTridiagSolverProperty: solveTridiag solves random diagonally
// dominant systems to near machine precision (verified by residual).
func TestTridiagSolverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		aa := make([]float64, n)
		bb := make([]float64, n)
		cc := make([]float64, n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				a[i] = rng.NormFloat64()
			}
			if i < n-1 {
				c[i] = rng.NormFloat64()
			}
			b[i] = 4 + math.Abs(a[i]) + math.Abs(c[i]) + rng.Float64() // dominant
			want[i] = rng.NormFloat64() * 10
		}
		copy(aa, a)
		copy(bb, b)
		copy(cc, c)
		// d = A·want
		for i := 0; i < n; i++ {
			d[i] = b[i] * want[i]
			if i > 0 {
				d[i] += a[i] * want[i-1]
			}
			if i < n-1 {
				d[i] += c[i] * want[i+1]
			}
		}
		solveTridiag(a, b, c, d)
		for i := 0; i < n; i++ {
			if math.Abs(d[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		_ = aa
		_ = bb
		_ = cc
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDryMassConservationProperty: mass conservation holds for arbitrary
// random (bounded) initial perturbations, not just the baroclinic setup.
func TestDryMassConservationProperty(t *testing.T) {
	g := grid.New(grid.R2B(1))
	vert := vertical.NewAtmosphere(8, 25000, 400)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(g, vert)
		s.InitIsothermalRest(270 + 40*rng.Float64())
		// Random wind and temperature perturbations.
		for e := range s.Vn {
			s.Vn[e] = 20 * (rng.Float64() - 0.5)
		}
		for i := range s.RhoTheta {
			s.RhoTheta[i] *= 1 + 0.02*(rng.Float64()-0.5)
		}
		s.UpdateDiagnostics()
		dy := NewDycore(s)
		m0 := s.TotalDryMass()
		for n := 0; n < 10; n++ {
			dy.Step(120)
		}
		if err := s.CheckFinite(); err != nil {
			return false
		}
		return math.Abs(s.TotalDryMass()-m0)/m0 < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestTracerConstancyProperty: tracer–mass consistency holds under random
// flow fields.
func TestTracerConstancyProperty(t *testing.T) {
	g := grid.New(grid.R2B(1))
	vert := vertical.NewAtmosphere(6, 20000, 400)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(g, vert)
		s.InitIsothermalRest(285)
		for e := range s.Vn {
			s.Vn[e] = 15 * (rng.Float64() - 0.5)
		}
		s.UpdateDiagnostics()
		q0 := 1e-4 * (1 + rng.Float64())
		for i := range s.Tracers[TracerCO2] {
			s.Tracers[TracerCO2][i] = q0
		}
		dy := NewDycore(s)
		rhoOld := make([]float64, len(s.Rho))
		for n := 0; n < 5; n++ {
			copy(rhoOld, s.Rho)
			dy.Step(120)
			dy.Transport(120, rhoOld)
		}
		for _, q := range s.Tracers[TracerCO2] {
			if math.Abs(q-q0) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestShallowWaterVolumeProperty: ∫h dA conserved for arbitrary initial
// bumps and depths.
func TestShallowWaterVolumeProperty(t *testing.T) {
	g := grid.New(grid.R2B(1))
	f := func(latRaw, lonRaw, ampRaw, h0Raw float64) bool {
		lat := math.Mod(math.Abs(latRaw), 1.4)
		lon := math.Mod(lonRaw, 3.0)
		amp := 1 + math.Mod(math.Abs(ampRaw), 20)
		h0 := 200 + math.Mod(math.Abs(h0Raw), 4000)
		s := NewShallowWater(g, h0)
		s.InitGaussianBump(lat, lon, 0.3, amp)
		v0 := s.TotalVolume()
		dt := 0.25 * g.DualLength[0] / math.Sqrt(Grav*h0)
		for n := 0; n < 30; n++ {
			s.Step(dt)
		}
		return math.Abs(s.TotalVolume()-v0) <= 1e-6*(math.Abs(v0)+amp*g.CellArea[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSatAdjustmentNeverNegative: the saturation adjustment never produces
// negative water species for any physical inputs.
func TestSatAdjustmentNeverNegative(t *testing.T) {
	g := grid.New(grid.R2B(0))
	vert := vertical.NewAtmosphere(4, 16000, 500)
	f := func(qvRaw, qcRaw, tRaw float64) bool {
		s := NewState(g, vert)
		s.InitIsothermalRest(250 + math.Mod(math.Abs(tRaw), 60))
		qv := math.Mod(math.Abs(qvRaw), 0.04)
		qc := math.Mod(math.Abs(qcRaw), 0.01)
		for i := range s.Tracers[TracerQV] {
			s.Tracers[TracerQV][i] = qv
			s.Tracers[TracerQC][i] = qc
		}
		p := NewPhysics(s)
		p.Step(600, SurfaceBC{})
		for i := range s.Tracers[TracerQV] {
			if s.Tracers[TracerQV][i] < 0 || s.Tracers[TracerQC][i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
