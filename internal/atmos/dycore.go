package atmos

import (
	"math"

	"icoearth/internal/gen"
	"icoearth/internal/sched"
	"icoearth/internal/sphere"
)

// Dycore advances the compressible equations with the two-time-level
// predictor–corrector scheme used by ICON: the horizontal momentum equation
// is stepped explicitly (predictor with the old Exner pressure, corrector
// with the time-averaged one), while the vertical acoustic system — w and
// the Exner response to vertical mass-flux convergence — is solved
// implicitly per column with the Thomas algorithm. Divergence damping
// stabilises the acoustic modes, and a Rayleigh sponge damps w near the
// model top.
//
// Every stage executes on the shared worker pool (internal/sched) as
// NPROMA-blocked loops over cells, edges, columns or levels. Loop bodies
// are bound once at construction and parameters pass through struct
// fields, so a steady-state step performs no per-dispatch allocation;
// reductions and scatter loops are structured so results are bit-identical
// at every worker count (see the sched package doc).
type Dycore struct {
	S *State

	// DivDamp is the nondimensional divergence damping coefficient
	// (ICON: ~1/50 per step).
	DivDamp float64
	// SpongeLevels is the number of top levels with Rayleigh damping on w.
	SpongeLevels int
	// SpongeCoeff is the maximum sponge damping rate (1/s).
	SpongeCoeff float64
	// ImplicitWeight is the off-centering of the vertical solver (0.5 =
	// Crank-Nicolson, 1 = backward Euler).
	ImplicitWeight float64

	// Perot reconstruction coefficients: for each cell, per edge, the 3-D
	// vector weight such that u⃗(c) = Σᵢ perot[c][i]·vn(eᵢ).
	perot [][3]sphere.Vec3
	// The same coefficients as flat per-component columns — the binding
	// surface of the generated Perot kernel.
	px1, px2, px3 []float64
	py1, py2, py3 []float64
	pz1, pz2, pz3 []float64
	// f at edges (Coriolis parameter).
	fEdge []float64

	// kernels selects the hot-path implementation: "" or "gen" binds the
	// SDFG-generated kernels from internal/gen (the default), "hand" the
	// hand-written twins where one is retained in-tree. See SetKernels.
	kernels string

	// Mass fluxes of the last step, consumed by tracer transport:
	// MassFluxEdge[e*nlev+k] is the time-centred ρ·vn used in continuity;
	// MassFluxVert[c*(nlev+1)+k] the implicit ρ·w at interfaces.
	MassFluxEdge []float64
	MassFluxVert []float64

	// Scratch.
	thFluxEdge []float64 // ρθ flux at edges
	rhoQ       []float64 // tracer transport workspace (lazily allocated)
	qFluxEdge  []float64
	ke         []float64 // kinetic energy at cells
	// Perot cell vectors, cell×level, one slice per component (the
	// generated reconstruction kernels write and read these directly).
	ucx, ucy, ucz      []float64
	zeta               []float64 // vorticity at vertices, one stripe per level
	vt                 []float64 // tangential velocity at edges
	div                []float64 // divergence scratch, one stripe per level
	vnPred             []float64
	exnerNew           []float64
	thA, thB, thC, thD []float64 // tridiagonal workspace, one stripe per worker slot

	// Pre-bound worker-pool bodies; per-call parameters pass through the
	// fields below so dispatch stays allocation-free.
	parKE, parUC, parVT         func(lo, hi int)
	parTend, parDamp            func(lo, hi int)
	parPred, parFluxE, parFluxC func(lo, hi int)
	parCorrExner, parCorrVn     func(lo, hi int)
	parSponge                   func(lo, hi int)
	parVSolve                   func(slot, lo, hi int)
	parTrFluxE, parTrCell       func(lo, hi int)
	parTrVert, parTrMix         func(lo, hi int)
	parDt                       float64
	tendExner, tendOut          []float64
	trQ, trRhoOld               []float64
}

// NewDycore builds a dycore for the state with default stabilisation
// parameters.
func NewDycore(s *State) *Dycore {
	g := s.G
	nlev := s.NLev
	d := &Dycore{
		S:              s,
		DivDamp:        0.02,
		SpongeLevels:   max(2, nlev/10),
		SpongeCoeff:    1.0 / 600,
		ImplicitWeight: 1.0,
		MassFluxEdge:   make([]float64, g.NEdges*nlev),
		MassFluxVert:   make([]float64, g.NCells*(nlev+1)),
		thFluxEdge:     make([]float64, g.NEdges*nlev),
		ke:             make([]float64, g.NCells*nlev),
		ucx:            make([]float64, g.NCells*nlev),
		ucy:            make([]float64, g.NCells*nlev),
		ucz:            make([]float64, g.NCells*nlev),
		zeta:           make([]float64, g.NVerts*nlev),
		vt:             make([]float64, g.NEdges*nlev),
		div:            make([]float64, g.NCells*nlev),
		vnPred:         make([]float64, g.NEdges*nlev),
		exnerNew:       make([]float64, g.NCells*nlev),
	}
	d.buildPerot()
	d.fEdge = make([]float64, g.NEdges)
	for e := range d.fEdge {
		lat, _ := g.EdgeCenter[e].LatLon()
		d.fEdge[e] = 2 * Omega * math.Sin(lat)
	}
	d.bindKernels()
	return d
}

// buildPerot precomputes the cell-centre vector reconstruction weights
// (Perot 2000): u⃗(c) = 1/A_c Σ_e o_ce·l_e·vn(e)·R(x̂_e − x̂_c).
func (d *Dycore) buildPerot() {
	g := d.S.G
	d.perot = make([][3]sphere.Vec3, g.NCells)
	for c := range g.CellEdges {
		for i, e := range g.CellEdges[c] {
			w := g.EdgeLength[e] * float64(g.EdgeOrient[c][i]) * sphere.EarthRadius / g.CellArea[c]
			d.perot[c][i] = g.EdgeCenter[e].Sub(g.CellCenter[c]).Scale(w)
		}
	}
	// Flat per-component columns for the generated kernel bindings.
	n := g.NCells
	d.px1, d.px2, d.px3 = make([]float64, n), make([]float64, n), make([]float64, n)
	d.py1, d.py2, d.py3 = make([]float64, n), make([]float64, n), make([]float64, n)
	d.pz1, d.pz2, d.pz3 = make([]float64, n), make([]float64, n), make([]float64, n)
	for c := range d.perot {
		d.px1[c], d.py1[c], d.pz1[c] = d.perot[c][0].X, d.perot[c][0].Y, d.perot[c][0].Z
		d.px2[c], d.py2[c], d.pz2[c] = d.perot[c][1].X, d.perot[c][1].Y, d.perot[c][1].Z
		d.px3[c], d.py3[c], d.pz3[c] = d.perot[c][2].X, d.perot[c][2].Y, d.perot[c][2].Z
	}
}

// ensureColumnScratch sizes the per-worker-slot tridiagonal stripes; the
// slot count is stable once the pool is configured, so this allocates at
// most once per configuration change.
func (d *Dycore) ensureColumnScratch() {
	need := sched.Slots() * (d.S.NLev + 1)
	if len(d.thA) < need {
		d.thA = make([]float64, need)
		d.thB = make([]float64, need)
		d.thC = make([]float64, need)
		d.thD = make([]float64, need)
	}
}

// KineticEnergyKernel fills d.ke: the z_ekinh computation of the paper's
// §5.2 listing, cell-parallel on the worker pool.
func (d *Dycore) KineticEnergyKernel() {
	sched.Run(d.S.G.NCells, d.parKE)
}

// TangentialKernel reconstructs cell-centre velocity vectors (Perot) and
// the tangential wind at edges into d.vt: a cell-parallel reconstruction
// sweep into the persistent d.uc scratch, then an edge-parallel
// projection sweep.
func (d *Dycore) TangentialKernel() {
	sched.Run(d.S.G.NCells, d.parUC)
	sched.Run(d.S.G.NEdges, d.parVT)
}

// vnTendencies computes the explicit horizontal momentum tendency into
// out: (ζ+f)·vt − ∂n KE − Cpd·θ_e·∂n Π, using the supplied Exner field.
// Levels are independent, so the level loop runs on the pool with one
// vorticity stripe per level; within a level the edge-scatter order is
// the serial one, keeping results worker-count-invariant.
func (d *Dycore) vnTendencies(exner []float64, out []float64) {
	d.tendExner, d.tendOut = exner, out
	sched.Run(d.S.NLev, d.parTend)
	d.tendExner, d.tendOut = nil, nil
}

// divergenceDamping adds κ·Δx²/Δt·∂n(div vn) to vn, suppressing acoustic
// noise of the predictor–corrector (ICON's divergence damping).
func (d *Dycore) divergenceDamping(dt float64) {
	if d.DivDamp == 0 {
		return
	}
	d.parDt = dt
	sched.Run(d.S.NLev, d.parDamp)
}

// Step advances the prognostic state by dt seconds. The stages mirror the
// kernel structure of ICON's dynamical core; Model launches them as
// individual device kernels.
func (d *Dycore) Step(dt float64) {
	d.S.UpdateDiagnostics()
	d.KineticEnergyKernel()
	d.TangentialKernel()
	d.StagePredictor(dt)
	d.StageHorizontalFluxes(dt)
	d.StageVertical(dt)
	d.StageCorrector(dt)
	d.StageDamping(dt)
}

// StagePredictor computes vn* = vn + Δt·tend(Π at time n) into d.vnPred.
func (d *Dycore) StagePredictor(dt float64) {
	d.vnTendencies(d.S.Exner, d.vnPred)
	d.parDt = dt
	sched.Run(len(d.vnPred), d.parPred)
}

// StageHorizontalFluxes computes and applies the horizontal mass and ρθ
// flux divergences: an edge-parallel flux sweep, then a cell-parallel
// divergence sweep. Fluxes are fully precomputed per edge before any
// cell is updated, so the update is order-independent and exactly
// conservative (every edge flux enters its two cells with opposite
// signs).
func (d *Dycore) StageHorizontalFluxes(dt float64) {
	d.parDt = dt
	sched.Run(d.S.G.NEdges, d.parFluxE)
	sched.Run(d.S.G.NCells, d.parFluxC)
}

// StageVertical performs the vertical implicit solve; updates w, ρ, ρθ.
func (d *Dycore) StageVertical(dt float64) {
	d.verticalSolve(dt)
}

// StageCorrector recomputes vn with the time-averaged Exner gradient.
func (d *Dycore) StageCorrector(dt float64) {
	sched.Run(len(d.S.RhoTheta), d.parCorrExner)
	d.vnTendencies(d.exnerNew, d.vnPred)
	d.parDt = dt
	sched.Run(len(d.S.Vn), d.parCorrVn)
}

// StageDamping applies divergence damping, the top sponge, and refreshes
// diagnostics.
func (d *Dycore) StageDamping(dt float64) {
	d.divergenceDamping(dt)
	d.sponge(dt)
	d.S.UpdateDiagnostics()
}

// sponge applies Rayleigh damping to w in the top levels.
func (d *Dycore) sponge(dt float64) {
	d.parDt = dt
	sched.Run(d.S.G.NCells, d.parSponge)
}

// verticalSolve performs the implicit acoustic update: solves the
// tridiagonal system for w at interior interfaces of every column, then
// applies the vertical flux convergence to ρ and ρθ. Columns are
// independent and run column-parallel with one tridiagonal stripe per
// worker slot.
func (d *Dycore) verticalSolve(dt float64) {
	d.ensureColumnScratch()
	d.parDt = dt
	sched.RunIndexed(d.S.G.NCells, d.parVSolve)
}

// bindKernels builds the worker-pool loop bodies once; they capture only
// the receiver, with per-call parameters passed through fields.
func (d *Dycore) bindKernels() {
	d.bindHotKernels()

	d.parTend = func(lo, hi int) {
		s := d.S
		g := s.G
		nlev := s.NLev
		exner, out := d.tendExner, d.tendOut
		for k := lo; k < hi; k++ {
			// Vorticity of this level, in its own stripe.
			z := d.zeta[k*g.NVerts : (k+1)*g.NVerts]
			for v := range z {
				z[v] = 0
			}
			for e, vv := range g.EdgeVerts {
				contrib := s.Vn[e*nlev+k] * g.DualLength[e]
				z[vv[0]] -= contrib
				z[vv[1]] += contrib
			}
			for v := range z {
				z[v] /= g.DualArea[v]
			}
			for e := 0; e < g.NEdges; e++ {
				c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
				i0, i1 := c0*nlev+k, c1*nlev+k
				gradPi := (exner[i1] - exner[i0]) / g.DualLength[e]
				gradKE := (d.ke[i1] - d.ke[i0]) / g.DualLength[e]
				thetaE := 0.5 * (s.RhoTheta[i0]/s.Rho[i0] + s.RhoTheta[i1]/s.Rho[i1])
				zetaE := 0.5 * (z[g.EdgeVerts[e][0]] + z[g.EdgeVerts[e][1]])
				out[e*nlev+k] = (zetaE+d.fEdge[e])*d.vt[e*nlev+k] - gradKE - Cpd*thetaE*gradPi
			}
		}
	}

	d.parDamp = func(lo, hi int) {
		s := d.S
		g := s.G
		nlev := s.NLev
		dt := d.parDt
		for k := lo; k < hi; k++ {
			dv := d.div[k*g.NCells : (k+1)*g.NCells]
			for c := 0; c < g.NCells; c++ {
				var sum float64
				for i, e := range g.CellEdges[c] {
					sum += float64(g.EdgeOrient[c][i]) * s.Vn[e*nlev+k] * g.EdgeLength[e]
				}
				dv[c] = sum / g.CellArea[c]
			}
			for e := 0; e < g.NEdges; e++ {
				c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
				dx := g.DualLength[e]
				coef := d.DivDamp * dx * dx / dt
				s.Vn[e*nlev+k] += dt * coef * (dv[c1] - dv[c0]) / dx
			}
		}
	}

	d.parPred = func(lo, hi int) {
		s := d.S
		dt := d.parDt
		for i := lo; i < hi; i++ {
			d.vnPred[i] = s.Vn[i] + dt*d.vnPred[i]
		}
	}

	d.parFluxE = func(lo, hi int) {
		s := d.S
		g := s.G
		nlev := s.NLev
		for e := lo; e < hi; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			for k := 0; k < nlev; k++ {
				vnAvg := 0.5 * (s.Vn[e*nlev+k] + d.vnPred[e*nlev+k])
				rhoE := 0.5 * (s.Rho[c0*nlev+k] + s.Rho[c1*nlev+k])
				f := vnAvg * rhoE
				d.MassFluxEdge[e*nlev+k] = f
				// Upstream-biased θ for stability: donor cell by flux sign.
				var thUp float64
				if f >= 0 {
					thUp = s.RhoTheta[c0*nlev+k] / s.Rho[c0*nlev+k]
				} else {
					thUp = s.RhoTheta[c1*nlev+k] / s.Rho[c1*nlev+k]
				}
				d.thFluxEdge[e*nlev+k] = f * thUp
			}
		}
	}

	d.parFluxC = func(lo, hi int) {
		s := d.S
		g := s.G
		nlev := s.NLev
		dt := d.parDt
		for c := lo; c < hi; c++ {
			for k := 0; k < nlev; k++ {
				var dm, dth float64
				for i, e := range g.CellEdges[c] {
					o := float64(g.EdgeOrient[c][i]) * g.EdgeLength[e]
					dm += o * d.MassFluxEdge[e*nlev+k]
					dth += o * d.thFluxEdge[e*nlev+k]
				}
				i := c*nlev + k
				s.Rho[i] -= dt * dm / g.CellArea[c]
				s.RhoTheta[i] -= dt * dth / g.CellArea[c]
			}
		}
	}

	d.parCorrExner = func(lo, hi int) {
		s := d.S
		for i := lo; i < hi; i++ {
			d.exnerNew[i] = 0.5 * (s.Exner[i] + ExnerFromRhoTheta(s.RhoTheta[i]))
		}
	}

	d.parCorrVn = func(lo, hi int) {
		s := d.S
		dt := d.parDt
		for i := lo; i < hi; i++ {
			s.Vn[i] += dt * d.vnPred[i]
		}
	}

	d.parSponge = func(lo, hi int) {
		s := d.S
		nlev := s.NLev
		dt := d.parDt
		for c := lo; c < hi; c++ {
			for k := 1; k <= d.SpongeLevels && k < nlev; k++ {
				rate := d.SpongeCoeff * float64(d.SpongeLevels-k+1) / float64(d.SpongeLevels)
				s.W[c*(nlev+1)+k] /= 1 + dt*rate
			}
		}
	}

	d.parVSolve = func(slot, lo, hi int) {
		s := d.S
		nlev := s.NLev
		vert := s.Vert
		dt := d.parDt
		wgt := d.ImplicitWeight
		stride := nlev + 1
		thA := d.thA[slot*stride : (slot+1)*stride]
		thB := d.thB[slot*stride : (slot+1)*stride]
		thC := d.thC[slot*stride : (slot+1)*stride]
		thD := d.thD[slot*stride : (slot+1)*stride]
		for c := lo; c < hi; c++ {
			base := c * nlev
			wbase := c * (nlev + 1)
			// Interface quantities (1..nlev-1): θᵢ, ψ=(ρθ)ᵢ, ρᵢ.
			// γ = dΠ/d(ρθ) = (Rd/Cvd)·Π/(ρθ) at full levels.
			// Assemble tridiagonal for w⁺[1..nlev-1].
			for k := 1; k < nlev; k++ {
				i0 := base + k - 1 // level above interface
				i1 := base + k     // level below
				thI := 0.5 * (s.RhoTheta[i0]/s.Rho[i0] + s.RhoTheta[i1]/s.Rho[i1])
				psiUp := 0.5 * (s.RhoTheta[i0] + s.RhoTheta[i1]) // ψ at this interface
				dzi := vert.IfaceGap(k)
				beta := dt * Cpd * thI / dzi * wgt
				exner0 := ExnerFromRhoTheta(s.RhoTheta[i0])
				exner1 := ExnerFromRhoTheta(s.RhoTheta[i1])
				gam0 := (Rd / Cvd) * exner0 / s.RhoTheta[i0]
				gam1 := (Rd / Cvd) * exner1 / s.RhoTheta[i1]
				dz0 := vert.LayerThickness(k - 1)
				dz1 := vert.LayerThickness(k)
				// ψ at neighbouring interfaces for the off-diagonals.
				var psiAbove, psiBelow float64
				if k > 1 {
					psiAbove = 0.5 * (s.RhoTheta[base+k-2] + s.RhoTheta[i0])
				}
				if k < nlev-1 {
					psiBelow = 0.5 * (s.RhoTheta[i1] + s.RhoTheta[base+k+1])
				}
				thA[k] = -beta * dt * gam0 * psiAbove / dz0
				thB[k] = 1 + beta*dt*(gam0*psiUp/dz0+gam1*psiUp/dz1)
				thC[k] = -beta * dt * gam1 * psiBelow / dz1
				thD[k] = s.W[wbase+k] - dt*Grav - (dt*Cpd*thI/dzi)*(exner0-exner1)
			}
			// Thomas algorithm, w⁺[0]=w⁺[nlev]=0.
			solveTridiag(thA[1:nlev], thB[1:nlev], thC[1:nlev], thD[1:nlev])
			s.W[wbase] = 0
			s.W[wbase+nlev] = 0
			for k := 1; k < nlev; k++ {
				s.W[wbase+k] = thD[k]
			}
			// Vertical fluxes and updates.
			// F at interface k: w⁺·ψ (for ρθ) and w⁺·ρᵢ (for ρ).
			var fThAbove, fRhoAbove float64 // flux at interface k (top of level k)
			for k := 0; k < nlev; k++ {
				var fThBelow, fRhoBelow float64
				if k < nlev-1 {
					i0 := base + k
					i1 := base + k + 1
					w := s.W[wbase+k+1]
					fThBelow = w * 0.5 * (s.RhoTheta[i0] + s.RhoTheta[i1])
					fRhoBelow = w * 0.5 * (s.Rho[i0] + s.Rho[i1])
				}
				dz := vert.LayerThickness(k)
				s.RhoTheta[base+k] += dt * (fThBelow - fThAbove) / dz
				s.Rho[base+k] += dt * (fRhoBelow - fRhoAbove) / dz
				d.MassFluxVert[wbase+k] = fRhoAbove
				fThAbove = fThBelow
				fRhoAbove = fRhoBelow
			}
			d.MassFluxVert[wbase+nlev] = 0
		}
	}

	d.bindTransport()
}

// bindHotKernels binds the z_ekinh (parKE) and Perot reconstruction
// (parUC/parVT) bodies: by default the SDFG-generated binders from
// internal/gen — slice-backed NPROMA blocks with the edge/cell index
// lookups hoisted out of the level loop — under SetKernels("hand") the
// hand-written twins retained for the A/B seam. Storage is bound once;
// checkpoint restore copies into the same slices, so rebinding is never
// needed mid-run.
func (d *Dycore) bindHotKernels() {
	g := d.S.G
	nlev := d.S.NLev
	if d.kernels == "hand" {
		d.bindHandKernels()
		return
	}
	t := &g.Gen
	d.parKE = gen.BindKeVn(nlev, t.Ke1, t.Ke2, t.Ke3, d.ke, d.S.Vn, t.Iel1, t.Iel2, t.Iel3)
	d.parUC = gen.BindPerotUc(nlev,
		d.px1, d.px2, d.px3, d.py1, d.py2, d.py3, d.pz1, d.pz2, d.pz3,
		d.ucx, d.ucy, d.ucz, d.S.Vn, t.Iel1, t.Iel2, t.Iel3)
	d.parVT = gen.BindPerotVt(nlev, t.Tx, t.Ty, t.Tz, d.ucx, d.ucy, d.ucz, d.vt, t.Icell1, t.Icell2)
}

// bindHandKernels binds the hand-written twins of the generated hot
// kernels (same storage, same association order — bit-identical).
func (d *Dycore) bindHandKernels() {
	d.parKE = func(lo, hi int) {
		g := d.S.G
		nlev := d.S.NLev
		vn := d.S.Vn
		for c := lo; c < hi; c++ {
			e0, e1, e2 := g.CellEdges[c][0], g.CellEdges[c][1], g.CellEdges[c][2]
			w0, w1, w2 := g.KineticCoeff[c][0], g.KineticCoeff[c][1], g.KineticCoeff[c][2]
			for k := 0; k < nlev; k++ {
				v0 := vn[e0*nlev+k]
				v1 := vn[e1*nlev+k]
				v2 := vn[e2*nlev+k]
				d.ke[c*nlev+k] = w0*v0*v0 + w1*v1*v1 + w2*v2*v2
			}
		}
	}

	d.parUC = func(lo, hi int) {
		g := d.S.G
		nlev := d.S.NLev
		vn := d.S.Vn
		for c := lo; c < hi; c++ {
			for k := 0; k < nlev; k++ {
				var ux, uy, uz float64
				for i, e := range g.CellEdges[c] {
					v := vn[e*nlev+k]
					p := d.perot[c][i]
					ux += v * p.X
					uy += v * p.Y
					uz += v * p.Z
				}
				i := c*nlev + k
				d.ucx[i], d.ucy[i], d.ucz[i] = ux, uy, uz
			}
		}
	}

	d.parVT = func(lo, hi int) {
		g := d.S.G
		nlev := d.S.NLev
		for e := lo; e < hi; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			t := g.EdgeTangent[e]
			for k := 0; k < nlev; k++ {
				i0, i1 := c0*nlev+k, c1*nlev+k
				mx := 0.5 * (d.ucx[i0] + d.ucx[i1])
				my := 0.5 * (d.ucy[i0] + d.ucy[i1])
				mz := 0.5 * (d.ucz[i0] + d.ucz[i1])
				d.vt[e*nlev+k] = mx*t.X + my*t.Y + mz*t.Z
			}
		}
	}
}

// SetKernels selects the hot-path implementation — "gen" (or "") for the
// SDFG-generated kernels, "hand" for the retained hand twins — and
// rebinds. The esmrun -kernels flag reaches this through the coupler.
func (d *Dycore) SetKernels(mode string) {
	d.kernels = mode
	d.bindHotKernels()
}

// HotKernel is one pool-dispatched hot-path body with the horizontal
// extent to run it over, exposed so benchmarks can time the currently
// bound implementation (gen or hand) without re-deriving the bindings.
type HotKernel struct {
	Name string
	N    int
	Body func(lo, hi int)
}

// HotKernels returns the dycore bodies behind the kernel seam as
// currently bound; call again after SetKernels to get the other side.
func (d *Dycore) HotKernels() []HotKernel {
	return []HotKernel{
		{Name: "ke_vn", N: d.S.G.NCells, Body: d.parKE},
		{Name: "perot_uc", N: d.S.G.NCells, Body: d.parUC},
		{Name: "perot_vt", N: d.S.G.NEdges, Body: d.parVT},
	}
}

// solveTridiag solves in place the tridiagonal system with sub-diagonal a,
// diagonal b, super-diagonal c and right-hand side d (overwritten with the
// solution).
func solveTridiag(a, b, c, d []float64) {
	n := len(d)
	if n == 0 {
		return
	}
	for i := 1; i < n; i++ {
		m := a[i] / b[i-1]
		b[i] -= m * c[i-1]
		d[i] -= m * d[i-1]
	}
	d[n-1] /= b[n-1]
	for i := n - 2; i >= 0; i-- {
		d[i] = (d[i] - c[i]*d[i+1]) / b[i]
	}
}
