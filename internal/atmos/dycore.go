package atmos

import (
	"math"

	"icoearth/internal/sphere"
)

// Dycore advances the compressible equations with the two-time-level
// predictor–corrector scheme used by ICON: the horizontal momentum equation
// is stepped explicitly (predictor with the old Exner pressure, corrector
// with the time-averaged one), while the vertical acoustic system — w and
// the Exner response to vertical mass-flux convergence — is solved
// implicitly per column with the Thomas algorithm. Divergence damping
// stabilises the acoustic modes, and a Rayleigh sponge damps w near the
// model top.
type Dycore struct {
	S *State

	// DivDamp is the nondimensional divergence damping coefficient
	// (ICON: ~1/50 per step).
	DivDamp float64
	// SpongeLevels is the number of top levels with Rayleigh damping on w.
	SpongeLevels int
	// SpongeCoeff is the maximum sponge damping rate (1/s).
	SpongeCoeff float64
	// ImplicitWeight is the off-centering of the vertical solver (0.5 =
	// Crank-Nicolson, 1 = backward Euler).
	ImplicitWeight float64

	// Perot reconstruction coefficients: for each cell, per edge, the 3-D
	// vector weight such that u⃗(c) = Σᵢ perot[c][i]·vn(eᵢ).
	perot [][3]sphere.Vec3
	// f at edges (Coriolis parameter).
	fEdge []float64

	// Mass fluxes of the last step, consumed by tracer transport:
	// MassFluxEdge[e*nlev+k] is the time-centred ρ·vn used in continuity;
	// MassFluxVert[c*(nlev+1)+k] the implicit ρ·w at interfaces.
	MassFluxEdge []float64
	MassFluxVert []float64

	// Scratch.
	thFluxEdge         []float64 // ρθ flux at edges
	rhoQ               []float64 // tracer transport workspace (lazily allocated)
	qFluxEdge          []float64
	ke                 []float64 // kinetic energy at cells
	zeta               []float64 // vorticity at vertices per level
	vt                 []float64 // tangential velocity at edges
	div                []float64 // divergence scratch (per level, cells)
	vnPred             []float64
	exnerNew           []float64
	thA, thB, thC, thD []float64 // tridiagonal workspace (per column)
}

// NewDycore builds a dycore for the state with default stabilisation
// parameters.
func NewDycore(s *State) *Dycore {
	g := s.G
	nlev := s.NLev
	d := &Dycore{
		S:              s,
		DivDamp:        0.02,
		SpongeLevels:   max(2, nlev/10),
		SpongeCoeff:    1.0 / 600,
		ImplicitWeight: 1.0,
		MassFluxEdge:   make([]float64, g.NEdges*nlev),
		MassFluxVert:   make([]float64, g.NCells*(nlev+1)),
		thFluxEdge:     make([]float64, g.NEdges*nlev),
		ke:             make([]float64, g.NCells*nlev),
		zeta:           make([]float64, g.NVerts),
		vt:             make([]float64, g.NEdges*nlev),
		div:            make([]float64, g.NCells),
		vnPred:         make([]float64, g.NEdges*nlev),
		exnerNew:       make([]float64, g.NCells*nlev),
		thA:            make([]float64, nlev+1),
		thB:            make([]float64, nlev+1),
		thC:            make([]float64, nlev+1),
		thD:            make([]float64, nlev+1),
	}
	d.buildPerot()
	d.fEdge = make([]float64, g.NEdges)
	for e := range d.fEdge {
		lat, _ := g.EdgeCenter[e].LatLon()
		d.fEdge[e] = 2 * Omega * math.Sin(lat)
	}
	return d
}

// buildPerot precomputes the cell-centre vector reconstruction weights
// (Perot 2000): u⃗(c) = 1/A_c Σ_e o_ce·l_e·vn(e)·R(x̂_e − x̂_c).
func (d *Dycore) buildPerot() {
	g := d.S.G
	d.perot = make([][3]sphere.Vec3, g.NCells)
	for c := range g.CellEdges {
		for i, e := range g.CellEdges[c] {
			w := g.EdgeLength[e] * float64(g.EdgeOrient[c][i]) * sphere.EarthRadius / g.CellArea[c]
			d.perot[c][i] = g.EdgeCenter[e].Sub(g.CellCenter[c]).Scale(w)
		}
	}
}

// KineticEnergyKernel fills d.ke: the z_ekinh computation of the paper's
// §5.2 listing, level by level.
func (d *Dycore) KineticEnergyKernel() {
	g := d.S.G
	nlev := d.S.NLev
	vn := d.S.Vn
	for c := 0; c < g.NCells; c++ {
		e0, e1, e2 := g.CellEdges[c][0], g.CellEdges[c][1], g.CellEdges[c][2]
		w0, w1, w2 := g.KineticCoeff[c][0], g.KineticCoeff[c][1], g.KineticCoeff[c][2]
		for k := 0; k < nlev; k++ {
			v0 := vn[e0*nlev+k]
			v1 := vn[e1*nlev+k]
			v2 := vn[e2*nlev+k]
			d.ke[c*nlev+k] = w0*v0*v0 + w1*v1*v1 + w2*v2*v2
		}
	}
}

// TangentialKernel reconstructs cell-centre velocity vectors (Perot) and
// the tangential wind at edges for level k into d.vt.
func (d *Dycore) TangentialKernel() {
	g := d.S.G
	nlev := d.S.NLev
	vn := d.S.Vn
	// Cell vectors per level, stored temporarily.
	uc := make([]sphere.Vec3, g.NCells)
	for k := 0; k < nlev; k++ {
		for c := 0; c < g.NCells; c++ {
			var u sphere.Vec3
			for i, e := range g.CellEdges[c] {
				u = u.Add(d.perot[c][i].Scale(vn[e*nlev+k]))
			}
			uc[c] = u
		}
		for e := 0; e < g.NEdges; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			m := uc[c0].Add(uc[c1]).Scale(0.5)
			d.vt[e*nlev+k] = m.Dot(g.EdgeTangent[e])
		}
	}
}

// vnTendencies computes the explicit horizontal momentum tendency into
// out: (ζ+f)·vt − ∂n KE − Cpd·θ_e·∂n Π, using the supplied Exner field.
func (d *Dycore) vnTendencies(exner []float64, out []float64) {
	g := d.S.G
	s := d.S
	nlev := s.NLev
	for k := 0; k < nlev; k++ {
		// Vorticity of this level.
		for v := range d.zeta {
			d.zeta[v] = 0
		}
		for e, vv := range g.EdgeVerts {
			contrib := s.Vn[e*nlev+k] * g.DualLength[e]
			d.zeta[vv[0]] -= contrib
			d.zeta[vv[1]] += contrib
		}
		for v := range d.zeta {
			d.zeta[v] /= g.DualArea[v]
		}
		for e := 0; e < g.NEdges; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			i0, i1 := c0*nlev+k, c1*nlev+k
			gradPi := (exner[i1] - exner[i0]) / g.DualLength[e]
			gradKE := (d.ke[i1] - d.ke[i0]) / g.DualLength[e]
			thetaE := 0.5 * (s.RhoTheta[i0]/s.Rho[i0] + s.RhoTheta[i1]/s.Rho[i1])
			zetaE := 0.5 * (d.zeta[g.EdgeVerts[e][0]] + d.zeta[g.EdgeVerts[e][1]])
			out[e*nlev+k] = (zetaE+d.fEdge[e])*d.vt[e*nlev+k] - gradKE - Cpd*thetaE*gradPi
		}
	}
}

// divergenceDamping adds κ·Δx²/Δt·∂n(div vn) to vn, suppressing acoustic
// noise of the predictor–corrector (ICON's divergence damping).
func (d *Dycore) divergenceDamping(dt float64) {
	if d.DivDamp == 0 {
		return
	}
	g := d.S.G
	s := d.S
	nlev := s.NLev
	for k := 0; k < nlev; k++ {
		for c := 0; c < g.NCells; c++ {
			var sum float64
			for i, e := range g.CellEdges[c] {
				sum += float64(g.EdgeOrient[c][i]) * s.Vn[e*nlev+k] * g.EdgeLength[e]
			}
			d.div[c] = sum / g.CellArea[c]
		}
		for e := 0; e < g.NEdges; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			dx := g.DualLength[e]
			coef := d.DivDamp * dx * dx / dt
			s.Vn[e*nlev+k] += dt * coef * (d.div[c1] - d.div[c0]) / dx
		}
	}
}

// Step advances the prognostic state by dt seconds. The stages mirror the
// kernel structure of ICON's dynamical core; Model launches them as
// individual device kernels.
func (d *Dycore) Step(dt float64) {
	d.S.UpdateDiagnostics()
	d.KineticEnergyKernel()
	d.TangentialKernel()
	d.StagePredictor(dt)
	d.StageHorizontalFluxes(dt)
	d.StageVertical(dt)
	d.StageCorrector(dt)
	d.StageDamping(dt)
}

// StagePredictor computes vn* = vn + Δt·tend(Π at time n) into d.vnPred.
func (d *Dycore) StagePredictor(dt float64) {
	s := d.S
	d.vnTendencies(s.Exner, d.vnPred)
	for i := range d.vnPred {
		d.vnPred[i] = s.Vn[i] + dt*d.vnPred[i]
	}
}

// StageHorizontalFluxes computes and applies the horizontal mass and ρθ
// flux divergences.
func (d *Dycore) StageHorizontalFluxes(dt float64) {
	s := d.S
	g := s.G
	nlev := s.NLev

	// Horizontal fluxes with time-centred velocity. Fluxes are fully
	// precomputed per edge before any cell is updated, so the update is
	// order-independent and exactly conservative (every edge flux enters
	// its two cells with opposite signs).
	for e := 0; e < g.NEdges; e++ {
		c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
		for k := 0; k < nlev; k++ {
			vnAvg := 0.5 * (s.Vn[e*nlev+k] + d.vnPred[e*nlev+k])
			rhoE := 0.5 * (s.Rho[c0*nlev+k] + s.Rho[c1*nlev+k])
			f := vnAvg * rhoE
			d.MassFluxEdge[e*nlev+k] = f
			// Upstream-biased θ for stability: donor cell by flux sign.
			var thUp float64
			if f >= 0 {
				thUp = s.RhoTheta[c0*nlev+k] / s.Rho[c0*nlev+k]
			} else {
				thUp = s.RhoTheta[c1*nlev+k] / s.Rho[c1*nlev+k]
			}
			d.thFluxEdge[e*nlev+k] = f * thUp
		}
	}
	// Apply horizontal divergence of mass and ρθ fluxes.
	for c := 0; c < g.NCells; c++ {
		for k := 0; k < nlev; k++ {
			var dm, dth float64
			for i, e := range g.CellEdges[c] {
				o := float64(g.EdgeOrient[c][i]) * g.EdgeLength[e]
				dm += o * d.MassFluxEdge[e*nlev+k]
				dth += o * d.thFluxEdge[e*nlev+k]
			}
			i := c*nlev + k
			s.Rho[i] -= dt * dm / g.CellArea[c]
			s.RhoTheta[i] -= dt * dth / g.CellArea[c]
		}
	}
}

// StageVertical performs the vertical implicit solve; updates w, ρ, ρθ.
func (d *Dycore) StageVertical(dt float64) {
	d.verticalSolve(dt)
}

// StageCorrector recomputes vn with the time-averaged Exner gradient.
func (d *Dycore) StageCorrector(dt float64) {
	s := d.S
	for i := range s.RhoTheta {
		d.exnerNew[i] = 0.5 * (s.Exner[i] + ExnerFromRhoTheta(s.RhoTheta[i]))
	}
	d.vnTendencies(d.exnerNew, d.vnPred)
	for i := range s.Vn {
		s.Vn[i] += dt * d.vnPred[i]
	}
}

// StageDamping applies divergence damping, the top sponge, and refreshes
// diagnostics.
func (d *Dycore) StageDamping(dt float64) {
	d.divergenceDamping(dt)
	d.sponge(dt)
	d.S.UpdateDiagnostics()
}

// sponge applies Rayleigh damping to w in the top levels.
func (d *Dycore) sponge(dt float64) {
	s := d.S
	nlev := s.NLev
	for c := 0; c < s.G.NCells; c++ {
		for k := 1; k <= d.SpongeLevels && k < nlev; k++ {
			rate := d.SpongeCoeff * float64(d.SpongeLevels-k+1) / float64(d.SpongeLevels)
			s.W[c*(nlev+1)+k] /= 1 + dt*rate
		}
	}
}

// verticalSolve performs the implicit acoustic update: solves the
// tridiagonal system for w at interior interfaces of every column, then
// applies the vertical flux convergence to ρ and ρθ.
func (d *Dycore) verticalSolve(dt float64) {
	s := d.S
	g := s.G
	nlev := s.NLev
	vert := s.Vert
	wgt := d.ImplicitWeight
	for c := 0; c < g.NCells; c++ {
		base := c * nlev
		wbase := c * (nlev + 1)
		// Interface quantities (1..nlev-1): θᵢ, ψ=(ρθ)ᵢ, ρᵢ.
		// γ = dΠ/d(ρθ) = (Rd/Cvd)·Π/(ρθ) at full levels.
		// Assemble tridiagonal for w⁺[1..nlev-1].
		for k := 1; k < nlev; k++ {
			i0 := base + k - 1 // level above interface
			i1 := base + k     // level below
			thI := 0.5 * (s.RhoTheta[i0]/s.Rho[i0] + s.RhoTheta[i1]/s.Rho[i1])
			psiUp := 0.5 * (s.RhoTheta[i0] + s.RhoTheta[i1]) // ψ at this interface
			dzi := vert.IfaceGap(k)
			beta := dt * Cpd * thI / dzi * wgt
			exner0 := ExnerFromRhoTheta(s.RhoTheta[i0])
			exner1 := ExnerFromRhoTheta(s.RhoTheta[i1])
			gam0 := (Rd / Cvd) * exner0 / s.RhoTheta[i0]
			gam1 := (Rd / Cvd) * exner1 / s.RhoTheta[i1]
			dz0 := vert.LayerThickness(k - 1)
			dz1 := vert.LayerThickness(k)
			// ψ at neighbouring interfaces for the off-diagonals.
			var psiAbove, psiBelow float64
			if k > 1 {
				psiAbove = 0.5 * (s.RhoTheta[base+k-2] + s.RhoTheta[i0])
			}
			if k < nlev-1 {
				psiBelow = 0.5 * (s.RhoTheta[i1] + s.RhoTheta[base+k+1])
			}
			d.thA[k] = -beta * dt * gam0 * psiAbove / dz0
			d.thB[k] = 1 + beta*dt*(gam0*psiUp/dz0+gam1*psiUp/dz1)
			d.thC[k] = -beta * dt * gam1 * psiBelow / dz1
			d.thD[k] = s.W[wbase+k] - dt*Grav - (dt*Cpd*thI/dzi)*(exner0-exner1)
		}
		// Thomas algorithm, w⁺[0]=w⁺[nlev]=0.
		solveTridiag(d.thA[1:nlev], d.thB[1:nlev], d.thC[1:nlev], d.thD[1:nlev])
		s.W[wbase] = 0
		s.W[wbase+nlev] = 0
		for k := 1; k < nlev; k++ {
			s.W[wbase+k] = d.thD[k]
		}
		// Vertical fluxes and updates.
		// F at interface k: w⁺·ψ (for ρθ) and w⁺·ρᵢ (for ρ).
		var fThAbove, fRhoAbove float64 // flux at interface k (top of level k)
		for k := 0; k < nlev; k++ {
			var fThBelow, fRhoBelow float64
			if k < nlev-1 {
				i0 := base + k
				i1 := base + k + 1
				w := s.W[wbase+k+1]
				fThBelow = w * 0.5 * (s.RhoTheta[i0] + s.RhoTheta[i1])
				fRhoBelow = w * 0.5 * (s.Rho[i0] + s.Rho[i1])
			}
			dz := vert.LayerThickness(k)
			s.RhoTheta[base+k] += dt * (fThBelow - fThAbove) / dz
			s.Rho[base+k] += dt * (fRhoBelow - fRhoAbove) / dz
			d.MassFluxVert[wbase+k] = fRhoAbove
			fThAbove = fThBelow
			fRhoAbove = fRhoBelow
		}
		d.MassFluxVert[wbase+nlev] = 0
	}
}

// solveTridiag solves in place the tridiagonal system with sub-diagonal a,
// diagonal b, super-diagonal c and right-hand side d (overwritten with the
// solution).
func solveTridiag(a, b, c, d []float64) {
	n := len(d)
	if n == 0 {
		return
	}
	for i := 1; i < n; i++ {
		m := a[i] / b[i-1]
		b[i] -= m * c[i-1]
		d[i] -= m * d[i-1]
	}
	d[n-1] /= b[n-1]
	for i := n - 2; i >= 0; i-- {
		d[i] = (d[i] - c[i]*d[i+1]) / b[i]
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
