package atmos

// Global energy diagnostics of the atmosphere: the budget the paper's
// "flow of energy ... through key components" (Figure 1) refers to. The
// total energy of the compressible system is
//
//	E = ∫ ρ(cv·T + g·z + ½|u|²) dV
//
// (internal + potential + kinetic). The adiabatic dynamical core conserves
// E up to time-truncation and damping losses; physics and radiation move
// energy across the surface boundary. Energy() exposes the three parts so
// tests can assert near-closure of the adiabatic core and examples can
// report the budget.

// EnergyBudget holds the globally integrated energy components in joules.
type EnergyBudget struct {
	Internal  float64
	Potential float64
	Kinetic   float64
}

// Total returns the sum of the components.
func (e EnergyBudget) Total() float64 { return e.Internal + e.Potential + e.Kinetic }

// Energy integrates the current energy budget.
func (s *State) Energy() EnergyBudget {
	g := s.G
	nlev := s.NLev
	var e EnergyBudget
	// Cell-centred internal and potential energy.
	for c := 0; c < g.NCells; c++ {
		a := g.CellArea[c]
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			dm := s.Rho[i] * a * s.Vert.LayerThickness(k) // kg
			T := s.Theta[i] * s.Exner[i]
			e.Internal += dm * Cvd * T
			e.Potential += dm * Grav * s.Vert.ZFull[k]
		}
	}
	// Horizontal kinetic energy via the C-grid edge quadrature (weight
	// l·d makes the pairing exact — see the shallow-water energy), with
	// edge density as the adjacent-cell mean.
	for ed := 0; ed < g.NEdges; ed++ {
		c0, c1 := g.EdgeCells[ed][0], g.EdgeCells[ed][1]
		w := g.EdgeLength[ed] * g.DualLength[ed]
		for k := 0; k < nlev; k++ {
			rhoE := 0.5 * (s.Rho[c0*nlev+k] + s.Rho[c1*nlev+k])
			u := s.Vn[ed*nlev+k]
			e.Kinetic += 0.5 * rhoE * u * u * w * s.Vert.LayerThickness(k)
		}
	}
	// Vertical kinetic energy at interfaces.
	for c := 0; c < g.NCells; c++ {
		a := g.CellArea[c]
		for k := 1; k < nlev; k++ {
			i := c*nlev + k
			w := s.W[c*(nlev+1)+k]
			e.Kinetic += 0.5 * s.Rho[i] * w * w * a * s.Vert.IfaceGap(k)
		}
	}
	return e
}
