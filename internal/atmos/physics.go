package atmos

import (
	"math"

	"icoearth/internal/sched"
)

// HeldSuarez holds the parameters of the Held & Suarez (1994) idealised
// radiative/boundary-layer forcing, the "physics" that stands in for the
// full radiation and turbulence schemes in throughput experiments.
type HeldSuarez struct {
	Ka     float64 // 1/s, free-atmosphere thermal relaxation rate
	Ks     float64 // 1/s, surface thermal relaxation rate
	Kf     float64 // 1/s, boundary-layer friction rate
	SigmaB float64 // boundary-layer top in σ
	DeltaT float64 // equator-pole temperature difference, K
	DeltaZ float64 // static-stability parameter, K
}

// DefaultHeldSuarez returns the published parameter set.
func DefaultHeldSuarez() HeldSuarez {
	return HeldSuarez{
		Ka:     1.0 / (40 * 86400),
		Ks:     1.0 / (4 * 86400),
		Kf:     1.0 / 86400,
		SigmaB: 0.7,
		DeltaT: 60,
		DeltaZ: 10,
	}
}

// TEq returns the Held–Suarez equilibrium temperature at latitude lat and
// pressure p.
func (h HeldSuarez) TEq(lat, p float64) float64 {
	sig := p / P0
	cos2 := math.Cos(lat) * math.Cos(lat)
	sin2 := 1 - cos2
	t := (315 - h.DeltaT*sin2 - h.DeltaZ*math.Log(sig)*cos2) * math.Pow(sig, Rd/Cpd)
	if t < 200 {
		t = 200
	}
	return t
}

// SurfaceBC carries the lower boundary condition supplied by the coupler:
// per-cell surface temperature and whether the surface is open water
// (ocean or lake; determines direct evaporation).
type SurfaceBC struct {
	Tsfc    []float64
	IsWater []bool
}

// SurfaceFluxes accumulates what the atmosphere hands back to the surface
// components over one physics step: all per-cell, positive downward
// (into the surface).
type SurfaceFluxes struct {
	SensibleHeat []float64 // W/m², positive = surface gains energy
	Evaporation  []float64 // kg/m²/s water leaving the surface (negative of downward)
	Precip       []float64 // kg/m²/s water reaching the surface
	WindStress   []float64 // N/m² magnitude of surface stress
	WindSpeed    []float64 // m/s lowest-level wind speed (for gas transfer)
}

// NewSurfaceFluxes allocates flux fields for ncells.
func NewSurfaceFluxes(ncells int) *SurfaceFluxes {
	return &SurfaceFluxes{
		SensibleHeat: make([]float64, ncells),
		Evaporation:  make([]float64, ncells),
		Precip:       make([]float64, ncells),
		WindStress:   make([]float64, ncells),
		WindSpeed:    make([]float64, ncells),
	}
}

// Physics bundles the column physics of the atmosphere.
type Physics struct {
	S  *State
	HS HeldSuarez

	// Bulk transfer coefficients.
	CDrag float64 // momentum
	CHeat float64 // sensible heat
	CEvap float64 // moisture

	// Autoconversion: cloud condensate above threshold rains out at Rate.
	CloudThreshold float64 // kg/kg
	AutoConvRate   float64 // 1/s

	// MoistureOn enables the water cycle (off for pure Held–Suarez runs).
	MoistureOn bool

	// Pre-bound worker-pool bodies (bound lazily on first Step so physics
	// built by struct literal also gets them); per-call parameters pass
	// through the fields below.
	parColumns func(lo, hi int)
	parFric    func(lo, hi int)
	parSurface func(lo, hi int)
	phDt       float64
	phBC       SurfaceBC
	phFl       *SurfaceFluxes
}

// NewPhysics returns physics with standard parameters.
func NewPhysics(s *State) *Physics {
	return &Physics{
		S:              s,
		HS:             DefaultHeldSuarez(),
		CDrag:          1.2e-3,
		CHeat:          1.0e-3,
		CEvap:          1.2e-3,
		CloudThreshold: 2e-4,
		AutoConvRate:   1.0 / 1800,
		MoistureOn:     true,
	}
}

// SatSpecificHumidity returns the saturation mass mixing ratio over liquid
// water at temperature T (K) and pressure p (Pa), via the Magnus form of
// Clausius–Clapeyron.
func SatSpecificHumidity(T, p float64) float64 {
	es := 610.78 * math.Exp(17.27*(T-273.15)/(T-35.86))
	if es > 0.5*p {
		es = 0.5 * p
	}
	return (Rd / Rv) * es / (p - (1-Rd/Rv)*es)
}

// Step applies one physics timestep: Held–Suarez relaxation and friction,
// saturation adjustment with autoconversion, and bulk surface fluxes using
// the boundary condition bc. The returned fluxes are fresh each call.
// The three sweeps (columns, edges, surface cells) write disjoint indices
// and run on the worker pool.
func (p *Physics) Step(dt float64, bc SurfaceBC) *SurfaceFluxes {
	s := p.S
	g := s.G
	fl := NewSurfaceFluxes(g.NCells)
	if p.parColumns == nil {
		p.bindKernels()
	}
	p.phDt, p.phBC, p.phFl = dt, bc, fl
	sched.Run(g.NCells, p.parColumns)
	sched.Run(g.NEdges, p.parFric)
	sched.Run(g.NCells, p.parSurface)
	p.phBC, p.phFl = SurfaceBC{}, nil
	return fl
}

// bindKernels builds the worker-pool loop bodies of the physics once.
func (p *Physics) bindKernels() {
	// Held–Suarez relaxation and saturation adjustment (per column).
	p.parColumns = func(lo, hi int) {
		s := p.S
		g := s.G
		nlev := s.NLev
		dt, fl := p.phDt, p.phFl
		for c := lo; c < hi; c++ {
			lat, _ := g.CellCenter[c].LatLon()
			psfc := Pressure(s.Exner[c*nlev+nlev-1])
			for k := 0; k < nlev; k++ {
				i := c*nlev + k
				exn := s.Exner[i]
				pres := Pressure(exn)
				sig := pres / psfc
				T := s.Theta[i] * exn
				// Thermal relaxation.
				cos4 := math.Pow(math.Cos(lat), 4)
				kt := p.HS.Ka
				if sig > p.HS.SigmaB {
					kt += (p.HS.Ks - p.HS.Ka) * cos4 * (sig - p.HS.SigmaB) / (1 - p.HS.SigmaB)
				}
				teq := p.HS.TEq(lat, pres)
				T -= dt * kt * (T - teq)

				if p.MoistureOn {
					qv := s.Tracers[TracerQV][i]
					qc := s.Tracers[TracerQC][i]
					qsat := SatSpecificHumidity(T, pres)
					gam := Lv * Lv * qsat / (Cpd * Rv * T * T)
					if qv > qsat {
						dq := (qv - qsat) / (1 + gam)
						qv -= dq
						qc += dq
						T += Lv * dq / Cpd
					} else if qc > 0 {
						// Evaporate cloud into subsaturated air.
						dq := math.Min(qc, (qsat-qv)/(1+gam))
						qv += dq
						qc -= dq
						T -= Lv * dq / Cpd
					}
					// Autoconversion to precipitation (instant fallout).
					if qc > p.CloudThreshold {
						rain := (qc - p.CloudThreshold) * math.Min(1, dt*p.AutoConvRate)
						qc -= rain
						// Column water flux to the surface.
						colMass := s.Rho[i] * s.Vert.LayerThickness(k)
						fl.Precip[c] += rain * colMass / dt
					}
					s.Tracers[TracerQV][i] = qv
					s.Tracers[TracerQC][i] = qc
				}
				// Write back via ρθ (ρ unchanged by physics).
				s.Theta[i] = T / exn
				s.RhoTheta[i] = s.Rho[i] * s.Theta[i]
			}
			s.PrecipAccum[c] += fl.Precip[c] * dt
		}
	}

	// Boundary-layer friction on vn (Held–Suarez kf).
	p.parFric = func(lo, hi int) {
		s := p.S
		g := s.G
		nlev := s.NLev
		dt := p.phDt
		for e := lo; e < hi; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			psfc := 0.5 * (Pressure(s.Exner[c0*nlev+nlev-1]) + Pressure(s.Exner[c1*nlev+nlev-1]))
			for k := 0; k < nlev; k++ {
				pres := 0.5 * (Pressure(s.Exner[c0*nlev+k]) + Pressure(s.Exner[c1*nlev+k]))
				sig := pres / psfc
				if sig <= p.HS.SigmaB {
					continue
				}
				kv := p.HS.Kf * (sig - p.HS.SigmaB) / (1 - p.HS.SigmaB)
				s.Vn[e*nlev+k] /= 1 + dt*kv
			}
		}
	}

	// Bulk surface fluxes on the lowest level.
	p.parSurface = func(lo, hi int) {
		s := p.S
		g := s.G
		nlev := s.NLev
		kl := nlev - 1
		dt, bc, fl := p.phDt, p.phBC, p.phFl
		for c := lo; c < hi; c++ {
			i := c*nlev + kl
			exn := s.Exner[i]
			T := s.Theta[i] * exn
			pres := Pressure(exn)
			// Wind speed from reconstructed kinetic energy of the lowest level.
			var ke float64
			for j, e := range g.CellEdges[c] {
				v := s.Vn[e*nlev+kl]
				ke += g.KineticCoeff[c][j] * v * v
			}
			speed := math.Sqrt(2*ke) + 1 // gustiness floor 1 m/s
			fl.WindSpeed[c] = speed
			rho := s.Rho[i]
			fl.WindStress[c] = rho * p.CDrag * speed * speed

			if bc.Tsfc != nil {
				ts := bc.Tsfc[c]
				// Sensible heat: positive when the surface is warmer loses heat
				// upward, i.e. atmosphere gains; sign convention here is
				// positive downward (into surface).
				h := rho * Cpd * p.CHeat * speed * (T - ts) // >0: atm warmer → surface gains
				fl.SensibleHeat[c] = h
				dz := s.Vert.LayerThickness(kl)
				dT := -h / (rho * Cpd * dz) * dt
				Tn := T + dT
				s.Theta[i] = Tn / exn
				s.RhoTheta[i] = rho * s.Theta[i]

				if p.MoistureOn && bc.IsWater != nil && bc.IsWater[c] {
					qsatS := SatSpecificHumidity(ts, pres)
					qv := s.Tracers[TracerQV][i]
					ev := rho * p.CEvap * speed * (qsatS - qv)
					if ev < 0 {
						ev = 0 // no dew for simplicity
					}
					fl.Evaporation[c] = ev
					s.Tracers[TracerQV][i] = qv + ev*dt/(rho*dz)
				}
			}
		}
	}
}

// ApplyTracerSurfaceFlux adds a surface mass flux (kg/m²/s, positive into
// the atmosphere) of tracer t to the lowest model level; used by the
// coupler for CO₂ exchange with land and ocean.
func (p *Physics) ApplyTracerSurfaceFlux(t int, flux []float64, dt float64) {
	s := p.S
	nlev := s.NLev
	kl := nlev - 1
	dz := s.Vert.LayerThickness(kl)
	for c := 0; c < s.G.NCells; c++ {
		i := c*nlev + kl
		s.Tracers[t][i] += flux[c] * dt / (s.Rho[i] * dz)
		if s.Tracers[t][i] < 0 {
			s.Tracers[t][i] = 0
		}
	}
}

// ColumnCO2Mass returns ∫ρ·qCO₂ dz per cell (kg/m²); the coupler uses the
// global integral for carbon conservation accounting.
func (p *Physics) ColumnCO2Mass(c int) float64 {
	s := p.S
	nlev := s.NLev
	var m float64
	for k := 0; k < nlev; k++ {
		i := c*nlev + k
		m += s.Rho[i] * s.Tracers[TracerCO2][i] * s.Vert.LayerThickness(k)
	}
	return m
}
