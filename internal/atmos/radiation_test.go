package atmos

import (
	"math"
	"testing"

	"icoearth/internal/grid"
	"icoearth/internal/vertical"
)

func radSetup() (*State, atmosBC) {
	g := grid.New(grid.R2B(1))
	vert := vertical.NewAtmosphere(12, 30000, 300)
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	s.InitTracers()
	bc := atmosBC{Tsfc: make([]float64, g.NCells), IsWater: make([]bool, g.NCells)}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 290
	}
	return s, bc
}

// atmosBC aliases SurfaceBC for brevity in this file.
type atmosBC = SurfaceBC

// TestRadiationEnergyClosure: for every column, the applied heating
// matches the boundary fluxes exactly.
func TestRadiationEnergyClosure(t *testing.T) {
	s, bc := radSetup()
	r := NewRadiation()
	fluxes := r.Step(s, 600, bc)
	for c, f := range fluxes {
		if err := math.Abs(f.EnergyClosure()); err > 1e-9*math.Abs(f.OLR) {
			t.Fatalf("column %d: closure error %v (OLR %v)", c, err, f.OLR)
		}
	}
}

// TestRadiationOLRRange: outgoing longwave is in the physical range and
// below the surface emission (greenhouse effect of the gray absorber).
func TestRadiationOLR(t *testing.T) {
	s, bc := radSetup()
	r := NewRadiation()
	fluxes := r.Step(s, 600, bc)
	for c, f := range fluxes {
		if f.OLR < 80 || f.OLR > 500 {
			t.Fatalf("column %d: OLR = %v W/m²", c, f.OLR)
		}
		if f.OLR >= f.SfcLWUp {
			t.Fatalf("column %d: no greenhouse effect (OLR %v ≥ sfc %v)", c, f.OLR, f.SfcLWUp)
		}
		if f.SfcLWDown <= 0 {
			t.Fatalf("column %d: no back radiation", c)
		}
	}
}

// TestRadiationCO2Greenhouse: doubling CO₂ lowers OLR at fixed state (the
// radiative forcing that makes the carbon cycle matter).
func TestRadiationCO2Greenhouse(t *testing.T) {
	s, bc := radSetup()
	r := NewRadiation()
	base := r.Step(s, 0, bc) // dt=0: diagnostics only, no heating applied

	s2, _ := radSetup()
	for i := range s2.Tracers[TracerCO2] {
		s2.Tracers[TracerCO2][i] *= 2
	}
	doubled := r.Step(s2, 0, bc)

	var dOLR float64
	for c := range base {
		dOLR += base[c].OLR - doubled[c].OLR
	}
	dOLR /= float64(len(base))
	if dOLR <= 0 {
		t.Errorf("doubling CO2 did not reduce OLR: Δ=%v", dOLR)
	}
	if dOLR > 40 {
		t.Errorf("2×CO2 forcing %v W/m² implausibly large", dOLR)
	}
}

// TestRadiationMoistGreenhouse: a moister column has lower OLR.
func TestRadiationMoistGreenhouse(t *testing.T) {
	s, bc := radSetup()
	r := NewRadiation()
	base := r.Step(s, 0, bc)
	for i := range s.Tracers[TracerQV] {
		s.Tracers[TracerQV][i] *= 2
	}
	moist := r.Step(s, 0, bc)
	// The isothermal test column is only 2 K colder than the surface, so
	// the effect is small but must have the greenhouse sign in the global
	// mean (tropical columns dominate; polar columns are nearly dry).
	var d float64
	for c := range base {
		d += base[c].OLR - moist[c].OLR
	}
	if d <= 0 {
		t.Errorf("moistening did not reduce mean OLR: Δsum=%v", d)
	}
}

// TestRadiationCoolsIsothermalColumn: with a surface at the air
// temperature, the gray atmosphere must cool radiatively (emission exceeds
// absorption aloft) — the destabilisation that drives convection.
func TestRadiationCoolsColumn(t *testing.T) {
	s, bc := radSetup()
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 288 // same as the air
	}
	r := NewRadiation()
	t0 := meanTemp(s)
	for n := 0; n < 20; n++ {
		r.Step(s, 600, bc)
	}
	t1 := meanTemp(s)
	if t1 >= t0 {
		t.Errorf("column did not cool radiatively: %v → %v", t0, t1)
	}
	// And cooling is gentle (no runaway): < 2 K over ~3.3 hours.
	if t0-t1 > 2 {
		t.Errorf("cooling too fast: %v K", t0-t1)
	}
}

// TestRadiationWarmSurfaceHeatsAir: a much warmer surface heats the
// lowest layers through absorption of its emission.
func TestRadiationWarmSurfaceHeats(t *testing.T) {
	s, bc := radSetup()
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 320
	}
	r := NewRadiation()
	nlev := s.NLev
	i := 0*nlev + nlev - 1
	tBefore := s.Theta[i] * s.Exner[i]
	for n := 0; n < 10; n++ {
		r.Step(s, 600, bc)
	}
	tAfter := s.Theta[i] * s.Exner[i]
	if tAfter <= tBefore {
		t.Errorf("hot surface did not warm the boundary layer: %v → %v", tBefore, tAfter)
	}
}

func meanTemp(s *State) float64 {
	var sum float64
	for i := range s.Theta {
		sum += s.Theta[i] * s.Exner[i]
	}
	return sum / float64(len(s.Theta))
}
