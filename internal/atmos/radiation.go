package atmos

import "math"

// Gray two-stream radiation: the step up from Held–Suarez relaxation
// toward the full model's radiative transfer. Shortwave heats the surface
// (handled by the surface components through SurfaceBC/diag fluxes);
// longwave is integrated through the column with a gray absorber whose
// optical depth follows water vapour and CO₂, so the scheme responds to
// the model's own composition — the coupling between radiation and the
// carbon/water cycles that motivates the full Earth system.
//
// The fluxes are computed per column on the model's own levels:
//
//	upward:   U(k) = U(k+1)·T(k) + σT⁴(k)·(1−T(k))
//	downward: D(k) = D(k−1)·T(k) + σT⁴(k)·(1−T(k))
//
// with layer transmissivity T(k) = exp(−Δτ(k)). Heating follows the flux
// divergence. Energy is exactly conserved between the column and its
// boundary fluxes (OLR at the top, net LW at the surface), which the
// tests assert.

// Radiation holds the gray-gas parameters.
type Radiation struct {
	// KappaVapor is the mass absorption coefficient of water vapour
	// (m²/kg); KappaCO2 of CO₂; KappaDry a pressure-broadening background.
	KappaVapor float64
	KappaCO2   float64
	KappaDry   float64
	// SolarConstant and PlanetAlbedo define the shortwave input proxy.
	SolarConstant float64
	PlanetAlbedo  float64
}

// NewRadiation returns gray-gas parameters tuned so a moist tropical
// column has LW optical depth ≈4 and OLR ≈ 240 W/m² near the observed
// global mean.
func NewRadiation() *Radiation {
	return &Radiation{
		KappaVapor:    0.09,
		KappaCO2:      25.0,
		KappaDry:      1.2e-5,
		SolarConstant: 1361,
		PlanetAlbedo:  0.3,
	}
}

const sigmaSB = 5.670374e-8

// ColumnFluxes is the radiative result for one column.
type ColumnFluxes struct {
	OLR        float64 // outgoing longwave at the model top, W/m²
	SfcLWDown  float64 // downward longwave reaching the surface
	SfcLWUp    float64 // upward longwave emitted by the surface
	SfcSWDown  float64 // absorbed shortwave at the surface
	NetHeating float64 // column-integrated LW heating (W/m²; −OLR−net sfc, ≤0 normally)
}

// Step applies longwave heating to every column over dt given the surface
// temperature (bc), and returns the per-cell boundary fluxes. The
// shortwave proxy is diagnostic (zenith-angle mean) and not applied to the
// air (it is absorbed by the surface components).
func (r *Radiation) Step(s *State, dt float64, bc SurfaceBC) []ColumnFluxes {
	nlev := s.NLev
	out := make([]ColumnFluxes, s.G.NCells)
	trans := make([]float64, nlev)
	up := make([]float64, nlev+1)
	dn := make([]float64, nlev+1)
	for c := 0; c < s.G.NCells; c++ {
		lat, _ := s.G.CellCenter[c].LatLon()
		// Layer transmissivities from composition.
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			dzMass := s.Rho[i] * s.Vert.LayerThickness(k) // kg/m²
			q := s.Tracers[TracerQV][i]
			co2 := s.Tracers[TracerCO2][i]
			dtau := dzMass * (r.KappaVapor*q + r.KappaCO2*co2 + r.KappaDry)
			trans[k] = math.Exp(-dtau)
		}
		tsfc := 288.0
		if bc.Tsfc != nil {
			tsfc = bc.Tsfc[c]
		}
		// Downward pass (k=0 top).
		dn[0] = 0
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			T := s.Theta[i] * s.Exner[i]
			planck := sigmaSB * T * T * T * T
			dn[k+1] = dn[k]*trans[k] + planck*(1-trans[k])
		}
		// Upward pass from the surface.
		sfcUp := sigmaSB * tsfc * tsfc * tsfc * tsfc
		up[nlev] = sfcUp
		for k := nlev - 1; k >= 0; k-- {
			i := c*nlev + k
			T := s.Theta[i] * s.Exner[i]
			planck := sigmaSB * T * T * T * T
			up[k] = up[k+1]*trans[k] + planck*(1-trans[k])
		}
		// Heating from flux divergence: net flux N(k) = U(k) − D(k) at
		// interfaces; layer heating = (N(k+1) − N(k)) (W/m², positive
		// heats the layer).
		var colHeat float64
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			nTop := up[k] - dn[k]
			nBot := up[k+1] - dn[k+1]
			heatW := nBot - nTop // W/m² absorbed by the layer
			colHeat += heatW
			dT := heatW * dt / (s.Rho[i] * Cpd * s.Vert.LayerThickness(k))
			s.Theta[i] += dT / s.Exner[i]
			s.RhoTheta[i] = s.Rho[i] * s.Theta[i]
		}
		// Shortwave proxy: daily-mean insolation by latitude.
		sw := r.SolarConstant / 4 * (1 - r.PlanetAlbedo) * 1.3 * math.Cos(lat) * math.Cos(lat)
		out[c] = ColumnFluxes{
			OLR:        up[0],
			SfcLWDown:  dn[nlev],
			SfcLWUp:    sfcUp,
			SfcSWDown:  sw,
			NetHeating: colHeat,
		}
	}
	return out
}

// EnergyClosure verifies the gray-gas budget for a column result: the
// column heating must equal what enters minus what leaves:
// colHeat = (SfcLWUp − SfcLWDown) − OLR.
func (f ColumnFluxes) EnergyClosure() float64 {
	return f.NetHeating - ((f.SfcLWUp - f.SfcLWDown) - f.OLR)
}
