package atmos

import (
	"testing"

	"icoearth/internal/sched"
)

// runBaroclinic advances a freshly built baroclinic state with the worker
// pool fixed at the given width and returns the state.
func runBaroclinic(width, steps int) *State {
	sched.SetWorkers(width)
	defer sched.SetWorkers(0)
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 30)
	s.InitTracers()
	dy := NewDycore(s)
	rhoOld := make([]float64, len(s.Rho))
	for n := 0; n < steps; n++ {
		copy(rhoOld, s.Rho)
		dy.Step(150)
		dy.Transport(150, rhoOld)
	}
	return s
}

// TestDycoreStepBitIdenticalAcrossWorkers: the full dycore step plus
// tracer transport at pool width 8 must reproduce width 1 exactly — every
// prognostic field compared with `==`, no tolerance. The blocked
// decomposition and fixed reduction fold order make this hold by
// construction; this test is the acceptance check.
func TestDycoreStepBitIdenticalAcrossWorkers(t *testing.T) {
	a := runBaroclinic(1, 10)
	b := runBaroclinic(8, 10)
	fields := []struct {
		name string
		x, y []float64
	}{
		{"Vn", a.Vn, b.Vn},
		{"W", a.W, b.W},
		{"Rho", a.Rho, b.Rho},
		{"RhoTheta", a.RhoTheta, b.RhoTheta},
		{"Exner", a.Exner, b.Exner},
		{"Theta", a.Theta, b.Theta},
		{"CO2", a.Tracers[TracerCO2], b.Tracers[TracerCO2]},
		{"O3", a.Tracers[TracerO3], b.Tracers[TracerO3]},
	}
	for _, f := range fields {
		if len(f.x) != len(f.y) {
			t.Fatalf("%s: length mismatch", f.name)
		}
		for i := range f.x {
			if f.x[i] != f.y[i] {
				t.Fatalf("%s differs at %d after 10 steps: workers=1 %v vs workers=8 %v (Δ=%g)",
					f.name, i, f.x[i], f.y[i], f.x[i]-f.y[i])
			}
		}
	}
}
