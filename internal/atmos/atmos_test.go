package atmos

import (
	"math"
	"testing"

	"icoearth/internal/exec"
	"icoearth/internal/grid"
	"icoearth/internal/vertical"
)

func testGrid() (*grid.Grid, *vertical.Atmosphere) {
	return grid.New(grid.R2B(1)), vertical.NewAtmosphere(12, 30000, 300)
}

func TestExnerRoundTrip(t *testing.T) {
	// Π(ρθ) and p(Π) must be consistent with the ideal gas law:
	// p = Rd·ρθ·Π^(Rd/Cpd)... i.e. p = Rd·ρT with T = θΠ.
	rhoTheta := 350.0 * 1.1
	exn := ExnerFromRhoTheta(rhoTheta)
	p := Pressure(exn)
	if math.Abs(p-Rd*rhoTheta*math.Pow(p/P0, Rd/Cpd)) > 1e-6*p {
		t.Errorf("equation of state inconsistent: p=%v", p)
	}
}

// TestWellBalancedRest: the discretely balanced isothermal atmosphere must
// stay at rest. This is the fundamental correctness test of the vertical
// solver + pressure gradient pairing.
func TestWellBalancedRest(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	dy := NewDycore(s)
	dt := 120.0
	for n := 0; n < 20; n++ {
		dy.Step(dt)
	}
	var maxVn, maxW float64
	for _, v := range s.Vn {
		if a := math.Abs(v); a > maxVn {
			maxVn = a
		}
	}
	for _, v := range s.W {
		if a := math.Abs(v); a > maxW {
			maxW = a
		}
	}
	if maxVn > 1e-8 {
		t.Errorf("rest state developed horizontal wind %v m/s", maxVn)
	}
	if maxW > 1e-8 {
		t.Errorf("rest state developed vertical wind %v m/s", maxW)
	}
}

// TestDryMassConservation: the dycore conserves total dry mass to
// round-off (flux-form continuity).
func TestDryMassConservation(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 25)
	dy := NewDycore(s)
	m0 := s.TotalDryMass()
	for n := 0; n < 25; n++ {
		dy.Step(120)
	}
	m1 := s.TotalDryMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("dry mass drift = %e", rel)
	}
}

// TestStabilityBaroclinic: a strongly perturbed state must remain finite
// and within physical bounds over many steps.
func TestStabilityBaroclinic(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 30)
	s.InitTracers()
	dy := NewDycore(s)
	for n := 0; n < 100; n++ {
		dy.Step(150)
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	for i, r := range s.Rho {
		if r <= 0 || r > 3 {
			t.Fatalf("unphysical density %v at %d", r, i)
		}
	}
	for i := range s.Theta {
		if s.Theta[i] < 150 || s.Theta[i] > 2000 {
			t.Fatalf("unphysical theta %v at %d", s.Theta[i], i)
		}
	}
}

// TestCourantReported: the baroclinic test above runs below the acoustic
// CFL limit (sanity of the configuration, not of the code).
func TestCourantReported(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 30)
	c := s.MaxCourant(150)
	if c > 0.9 {
		t.Errorf("test configuration too close to CFL: C=%v", c)
	}
	if c <= 0 {
		t.Errorf("courant = %v", c)
	}
}

// TestTracerConstancyPreservation: a spatially constant mixing ratio must
// remain exactly constant under transport (mass-consistent fluxes).
func TestTracerConstancyPreservation(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 25)
	for i := range s.Tracers[TracerCO2] {
		s.Tracers[TracerCO2][i] = 6.4e-4
	}
	dy := NewDycore(s)
	rhoOld := make([]float64, len(s.Rho))
	for n := 0; n < 10; n++ {
		copy(rhoOld, s.Rho)
		dy.Step(120)
		dy.Transport(120, rhoOld)
	}
	for i, q := range s.Tracers[TracerCO2] {
		if math.Abs(q-6.4e-4) > 1e-12 {
			t.Fatalf("constant tracer drifted at %d: %v", i, q)
		}
	}
}

// TestTracerMassConservation: total tracer mass is conserved by transport.
func TestTracerMassConservation(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 25)
	s.InitTracers()
	dy := NewDycore(s)
	m0 := s.TracerMass(TracerO3)
	rhoOld := make([]float64, len(s.Rho))
	for n := 0; n < 20; n++ {
		copy(rhoOld, s.Rho)
		dy.Step(120)
		dy.Transport(120, rhoOld)
	}
	m1 := s.TracerMass(TracerO3)
	if rel := math.Abs(m1-m0) / m0; rel > 1e-9 {
		t.Errorf("ozone mass drift = %e", rel)
	}
}

// TestTracerPositivity: donor-cell upwind keeps tracers non-negative.
func TestTracerPositivity(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 30)
	s.InitTracers()
	dy := NewDycore(s)
	rhoOld := make([]float64, len(s.Rho))
	for n := 0; n < 30; n++ {
		copy(rhoOld, s.Rho)
		dy.Step(150)
		dy.Transport(150, rhoOld)
	}
	for t2 := 0; t2 < NumTracers; t2++ {
		for i, q := range s.Tracers[t2] {
			if q < 0 {
				t.Fatalf("tracer %d negative at %d: %v", t2, i, q)
			}
		}
	}
}

func TestHeldSuarezEquilibrium(t *testing.T) {
	hs := DefaultHeldSuarez()
	// Warm at equatorial surface, floored at 200 K aloft.
	if te := hs.TEq(0, P0); math.Abs(te-315) > 1e-9 {
		t.Errorf("equator surface Teq = %v", te)
	}
	if te := hs.TEq(math.Pi/2, 1000); te != 200 {
		t.Errorf("polar stratosphere Teq = %v, want floor 200", te)
	}
	// Equator warmer than pole at the surface.
	if hs.TEq(0, P0) <= hs.TEq(math.Pi/2, P0) {
		t.Errorf("no meridional gradient")
	}
}

func TestSatSpecificHumidity(t *testing.T) {
	// ≈3.8 g/kg at 0 °C / 1000 hPa; strongly increasing with T.
	q0 := SatSpecificHumidity(273.15, P0)
	if q0 < 0.003 || q0 > 0.005 {
		t.Errorf("qsat(0°C) = %v", q0)
	}
	q30 := SatSpecificHumidity(303.15, P0)
	if q30 < 5*q0 {
		t.Errorf("qsat(30°C)/qsat(0°C) = %v, want ≳7", q30/q0)
	}
	// Lower pressure → higher mixing ratio.
	if SatSpecificHumidity(273.15, 5e4) <= q0 {
		t.Errorf("qsat should increase as pressure drops")
	}
}

// TestPhysicsRelaxesToward: Held–Suarez drives temperature toward Teq.
func TestPhysicsRelaxesToward(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	p := NewPhysics(s)
	p.MoistureOn = false
	// Distance from Teq before and after a long relaxation.
	dist := func() float64 {
		var sum float64
		nlev := s.NLev
		for c := 0; c < g.NCells; c++ {
			lat, _ := g.CellCenter[c].LatLon()
			for k := 0; k < nlev; k++ {
				i := c*nlev + k
				T := s.Theta[i] * s.Exner[i]
				teq := p.HS.TEq(lat, Pressure(s.Exner[i]))
				sum += (T - teq) * (T - teq)
			}
		}
		return math.Sqrt(sum)
	}
	d0 := dist()
	for n := 0; n < 200; n++ {
		p.Step(3600, SurfaceBC{})
	}
	d1 := dist()
	if d1 >= d0 {
		t.Errorf("relaxation not converging: %v → %v", d0, d1)
	}
}

// TestSaturationAdjustmentConservesWaterAndEnergy: within one column the
// adjustment exchanges qv↔qc and heats by Lv/cp per unit condensate.
func TestSaturationAdjustment(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	p := NewPhysics(s)
	p.AutoConvRate = 0 // isolate the adjustment
	// Supersaturate one cell's lowest level.
	nlev := s.NLev
	i := 0*nlev + nlev - 1
	s.Tracers[TracerQV][i] = 0.05
	qt0 := s.Tracers[TracerQV][i] + s.Tracers[TracerQC][i]
	T0 := s.Theta[i] * s.Exner[i]
	p.Step(600, SurfaceBC{})
	qv := s.Tracers[TracerQV][i]
	qc := s.Tracers[TracerQC][i]
	T1 := s.Theta[i] * s.Exner[i]
	if qc <= 0 {
		t.Fatal("no condensation from supersaturated state")
	}
	if math.Abs(qv+qc-qt0) > 1e-12 {
		t.Errorf("total water changed: %v → %v", qt0, qv+qc)
	}
	// Latent heating ≈ Lv/cpd per condensed amount (Held-Suarez cooling
	// over 600 s is negligible by comparison).
	dTexpect := Lv * qc / Cpd
	if math.Abs((T1-T0)-dTexpect) > 0.2*dTexpect {
		t.Errorf("latent heating %v, expected ≈%v", T1-T0, dTexpect)
	}
}

// TestSurfaceEvaporationOverOcean: a warm sea surface moistens the lowest
// layer; the flux is reported with the right magnitude.
func TestSurfaceEvaporation(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	p := NewPhysics(s)
	bc := SurfaceBC{
		Tsfc:    make([]float64, g.NCells),
		IsWater: make([]bool, g.NCells),
	}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 300
		bc.IsWater[c] = true
	}
	nlev := s.NLev
	q0 := s.Tracers[TracerQV][0*nlev+nlev-1]
	fl := p.Step(600, bc)
	q1 := s.Tracers[TracerQV][0*nlev+nlev-1]
	if q1 <= q0 {
		t.Errorf("no moistening from warm ocean: %v → %v", q0, q1)
	}
	if fl.Evaporation[0] <= 0 {
		t.Errorf("evaporation flux = %v", fl.Evaporation[0])
	}
	// Sensible heat: surface warmer than air → heat flows up into the
	// atmosphere → SensibleHeat (positive downward) is negative.
	if fl.SensibleHeat[0] >= 0 {
		t.Errorf("sensible heat sign: %v", fl.SensibleHeat[0])
	}
	if fl.WindStress[0] <= 0 || fl.WindSpeed[0] < 1 {
		t.Errorf("stress/speed: %v %v", fl.WindStress[0], fl.WindSpeed[0])
	}
}

func TestApplyTracerSurfaceFlux(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	s.InitTracers()
	p := NewPhysics(s)
	flux := make([]float64, g.NCells)
	for c := range flux {
		flux[c] = 1e-8 // kg CO2 /m²/s upward
	}
	before := s.TracerMass(TracerCO2)
	p.ApplyTracerSurfaceFlux(TracerCO2, flux, 600)
	after := s.TracerMass(TracerCO2)
	// Added mass = flux · dt · area.
	want := 1e-8 * 600 * g.TotalArea()
	if math.Abs((after-before)-want) > 1e-3*want {
		t.Errorf("added CO2 mass %v, want %v", after-before, want)
	}
}

// TestModelKernelLaunches: the Model submits the expected kernel stream
// and the device accounts bytes.
func TestModelKernelLaunches(t *testing.T) {
	g, vert := testGrid()
	dev := exec.NewDevice(exec.DeviceSpec{Name: "gpu", MemBW: 1e12, LaunchLatency: 1e-6, HalfSatBytes: 1e6, PowerIdle: 10, PowerMax: 100})
	m := NewModel(g, vert, dev)
	m.State.InitIsothermalRest(288)
	m.State.InitTracers()
	bc := SurfaceBC{Tsfc: make([]float64, g.NCells), IsWater: make([]bool, g.NCells)}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 290
	}
	fl := m.Step(300, bc)
	if fl == nil {
		t.Fatal("no fluxes returned")
	}
	if dev.Launches() != 10 {
		t.Errorf("launches = %d, want 10 kernels per step", dev.Launches())
	}
	if dev.BytesMoved() <= 0 || dev.SimTime() <= 0 {
		t.Errorf("device accounting: bytes=%v time=%v", dev.BytesMoved(), dev.SimTime())
	}
	if m.Steps() != 1 {
		t.Errorf("steps = %d", m.Steps())
	}
	if m.BytesPerStep() <= 0 {
		t.Error("BytesPerStep = 0")
	}
}

// TestGeostrophicTendencySign: for a northern-hemisphere zonal jet the
// Coriolis term should deflect flow to the right; verify via the vorticity
// kernel producing the expected sign of tendencies (smoke test of the
// Coriolis sign convention: an eastward wind at 45°N gives a southward
// (equatorward) pressure-free acceleration).
func TestInertialCircleRotationDirection(t *testing.T) {
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	dy := NewDycore(s)
	// Uniform eastward wind in a narrow northern band.
	for e := 0; e < g.NEdges; e++ {
		lat, _ := g.EdgeCenter[e].LatLon()
		if lat > 0.6 && lat < 0.9 {
			east := eastComponent(g, e)
			for k := 0; k < s.NLev; k++ {
				s.Vn[e*s.NLev+k] = 10 * east
			}
		}
	}
	s.UpdateDiagnostics()
	dy.KineticEnergyKernel()
	dy.TangentialKernel()
	tend := make([]float64, len(s.Vn))
	dy.vnTendencies(s.Exner, tend)
	// Project the tendency onto local north at edges inside the band and
	// away from its boundary; Coriolis should push the flow southward
	// (negative northward tendency) in the NH.
	var northTend float64
	var count int
	for e := 0; e < g.NEdges; e++ {
		lat, _ := g.EdgeCenter[e].LatLon()
		if lat < 0.68 || lat > 0.82 {
			continue
		}
		n := g.EdgeNormal[e]
		// local north projection of the normal
		p := g.EdgeCenter[e]
		northProj := n.Z - p.Z*(n.X*p.X+n.Y*p.Y+n.Z*p.Z)
		for k := 2; k < s.NLev-2; k++ {
			northTend += tend[e*s.NLev+k] * northProj
			count++
		}
	}
	if count == 0 {
		t.Skip("grid too coarse for band test")
	}
	if northTend >= 0 {
		t.Errorf("Coriolis deflection wrong sign: mean northward tendency %v", northTend/float64(count))
	}
}
