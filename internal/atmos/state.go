// Package atmos implements the nonhydrostatic atmosphere component: a
// compressible ρ–θ–vn–w dynamical core on the icosahedral-triangular C-grid
// with two-time-level predictor–corrector stepping and a vertically
// implicit acoustic solver (the structure of ICON's dynamical core,
// Giorgetta et al. 2018), flux-form tracer transport for H₂O, CO₂ and O₃,
// and simple column physics (Held–Suarez radiative relaxation, boundary
// layer friction, saturation adjustment with precipitation, and bulk
// surface fluxes).
//
// Fields are stored cell-major with levels contiguous (index c*nlev+k,
// k=0 the model top), the memory layout ICON uses on GPUs; edge fields use
// e*nlev+k.
package atmos

import (
	"fmt"
	"math"

	"icoearth/internal/grid"
	"icoearth/internal/sched"
	"icoearth/internal/vertical"
)

// Physical constants (ICON values).
const (
	Cpd   = 1004.64  // specific heat of dry air at constant pressure, J/(kg K)
	Rd    = 287.04   // gas constant of dry air, J/(kg K)
	Cvd   = Cpd - Rd // constant-volume specific heat
	P0    = 1.0e5    // reference pressure, Pa
	Grav  = 9.80665  // gravity, m/s²
	Omega = 7.29212e-5
	Lv    = 2.5008e6 // latent heat of vaporisation, J/kg
	Rv    = 461.51   // gas constant of water vapour
)

// Tracer indices.
const (
	TracerQV = iota // water vapour (+ cloud condensate after adjustment)
	TracerQC        // cloud condensate
	TracerCO2
	TracerO3
	NumTracers
)

// State holds the prognostic and main diagnostic fields of the atmosphere.
type State struct {
	G    *grid.Grid
	Vert *vertical.Atmosphere
	NLev int

	// Prognostic fields.
	Rho      []float64             // density at cells [c*nlev+k]
	RhoTheta []float64             // ρθ at cells
	Vn       []float64             // normal velocity at edges [e*nlev+k]
	W        []float64             // vertical velocity at interfaces [c*(nlev+1)+k]
	Tracers  [NumTracers][]float64 // mass mixing ratios at cells

	// Diagnostics (updated every step).
	Exner []float64 // Exner pressure Π at cells
	Theta []float64 // θ = ρθ/ρ

	// Accumulated surface precipitation flux per cell (kg/m², since start).
	PrecipAccum []float64

	// parDiag is the pre-bound UpdateDiagnostics loop body (bound lazily so
	// states built by struct literal in tests also get it).
	parDiag func(lo, hi int)
}

// NewState allocates a state on grid g with nlev levels.
func NewState(g *grid.Grid, vert *vertical.Atmosphere) *State {
	nlev := vert.NLev
	s := &State{
		G:           g,
		Vert:        vert,
		NLev:        nlev,
		Rho:         make([]float64, g.NCells*nlev),
		RhoTheta:    make([]float64, g.NCells*nlev),
		Vn:          make([]float64, g.NEdges*nlev),
		W:           make([]float64, g.NCells*(nlev+1)),
		Exner:       make([]float64, g.NCells*nlev),
		Theta:       make([]float64, g.NCells*nlev),
		PrecipAccum: make([]float64, g.NCells),
	}
	for t := range s.Tracers {
		s.Tracers[t] = make([]float64, g.NCells*nlev)
	}
	return s
}

// ExnerFromRhoTheta computes Π = (Rd·ρθ/p0)^(Rd/Cvd), the equation of
// state of the ρθ formulation.
func ExnerFromRhoTheta(rhoTheta float64) float64 {
	return math.Pow(Rd*rhoTheta/P0, Rd/Cvd)
}

// Pressure returns p = p0·Π^(Cpd/Rd).
func Pressure(exner float64) float64 {
	return P0 * math.Pow(exner, Cpd/Rd)
}

// Temperature returns T = θ·Π.
func Temperature(theta, exner float64) float64 { return theta * exner }

// UpdateDiagnostics refreshes Exner and Theta from the prognostics. The
// update is elementwise (one math.Pow per cell-level) and runs on the
// worker pool.
func (s *State) UpdateDiagnostics() {
	if s.parDiag == nil {
		s.parDiag = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.Exner[i] = ExnerFromRhoTheta(s.RhoTheta[i])
				s.Theta[i] = s.RhoTheta[i] / s.Rho[i]
			}
		}
	}
	sched.Run(len(s.Rho), s.parDiag)
}

// InitIsothermalRest sets a horizontally uniform, discretely hydrostatic
// state of rest with surface temperature t0. The discrete balance
// Cpd·θᵢ·(Π[k-1]−Π[k])/Δzᵢ = −g holds exactly level by level, so the
// dynamical core must preserve the state to machine precision — the
// fundamental "well-balancedness" test of the solver.
func (s *State) InitIsothermalRest(t0 float64) {
	nlev := s.NLev
	theta := make([]float64, nlev)
	exner := make([]float64, nlev)
	// Isothermal: T = t0 everywhere, so θ(z) = t0/Π(z). Integrate the
	// discrete hydrostatic relation downward from the top.
	// Analytic seed at the top full level:
	// p(z) = p0·exp(−g·z/(Rd·t0)) for an isothermal atmosphere.
	zTop := s.Vert.ZFull[0]
	pTop := P0 * math.Exp(-Grav*zTop/(Rd*t0))
	exner[0] = math.Pow(pTop/P0, Rd/Cpd)
	theta[0] = t0 / exner[0]
	for k := 1; k < nlev; k++ {
		dz := s.Vert.IfaceGap(k)
		// Solve Cpd·0.5·(θ[k-1]+θ[k])·(Π[k]−Π[k-1]) = g·dz with
		// θ[k] = t0/Π[k]: iterate the fixed point (converges fast).
		pk := exner[k-1] + Grav*dz/(Cpd*theta[k-1])
		for it := 0; it < 50; it++ {
			th := 0.5 * (theta[k-1] + t0/pk)
			pkNew := exner[k-1] + Grav*dz/(Cpd*th)
			if math.Abs(pkNew-pk) < 1e-15 {
				pk = pkNew
				break
			}
			pk = pkNew
		}
		exner[k] = pk
		theta[k] = t0 / pk
	}
	for c := 0; c < s.G.NCells; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			rhoTheta := P0 * math.Pow(exner[k], Cvd/Rd) / Rd
			s.RhoTheta[i] = rhoTheta
			s.Rho[i] = rhoTheta / theta[k]
		}
	}
	for i := range s.Vn {
		s.Vn[i] = 0
	}
	for i := range s.W {
		s.W[i] = 0
	}
	s.UpdateDiagnostics()
}

// InitBaroclinic sets the isothermal balanced state plus a zonal jet and a
// localised θ perturbation that spins up baroclinic eddies; amp is the jet
// speed in m/s. The result is not exactly balanced — it is the standard
// "spin-up" initial condition for throughput experiments.
func (s *State) InitBaroclinic(t0, amp float64) {
	s.InitIsothermalRest(t0)
	nlev := s.NLev
	for e := 0; e < s.G.NEdges; e++ {
		lat, _ := s.G.EdgeCenter[e].LatLon()
		// Zonal jet peaked at mid-latitudes.
		u := amp * math.Sin(2*lat) * math.Sin(2*lat)
		if lat < 0 {
			u = -u * 0 // northern jet only; keep the south calm
		}
		east := eastComponent(s.G, e)
		for k := 0; k < nlev; k++ {
			// Jet strongest aloft.
			prof := float64(nlev-k) / float64(nlev)
			s.Vn[e*nlev+k] = u * east * prof
		}
	}
	// θ bump (warm anomaly) near (40°N, 90°E).
	for c := 0; c < s.G.NCells; c++ {
		lat, lon := s.G.CellCenter[c].LatLon()
		d2 := (lat-0.7)*(lat-0.7) + (lon-1.57)*(lon-1.57)
		bump := 2.0 * math.Exp(-d2/0.02)
		if bump < 1e-4 {
			continue
		}
		for k := nlev / 2; k < nlev; k++ {
			i := c*nlev + k
			th := s.RhoTheta[i]/s.Rho[i] + bump
			s.RhoTheta[i] = s.Rho[i] * th
		}
	}
	s.UpdateDiagnostics()
}

// InitTracers sets idealised tracer distributions: specific humidity
// decaying with height and latitude, well-mixed CO₂ (≈420 ppm by mass
// ratio ≈ 6.4e-4), and a stratospheric O₃ layer.
func (s *State) InitTracers() {
	nlev := s.NLev
	for c := 0; c < s.G.NCells; c++ {
		lat, _ := s.G.CellCenter[c].LatLon()
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			z := s.Vert.ZFull[k]
			qsfc := 0.015 * math.Cos(lat) * math.Cos(lat)
			s.Tracers[TracerQV][i] = qsfc * math.Exp(-z/2500)
			s.Tracers[TracerQC][i] = 0
			s.Tracers[TracerCO2][i] = 6.4e-4
			// Ozone bump centred near 25 km.
			s.Tracers[TracerO3][i] = 8e-6 * math.Exp(-(z-25000)*(z-25000)/(2*6000*6000))
		}
	}
}

// eastComponent returns ê·n̂ at edge e: the projection of the local east
// direction onto the edge normal.
func eastComponent(g *grid.Grid, e int) float64 {
	p := g.EdgeCenter[e]
	east := eastVec(p.X, p.Y)
	return east[0]*g.EdgeNormal[e].X + east[1]*g.EdgeNormal[e].Y + east[2]*g.EdgeNormal[e].Z
}

func eastVec(x, y float64) [3]float64 {
	n := math.Hypot(x, y)
	if n < 1e-12 {
		return [3]float64{1, 0, 0}
	}
	return [3]float64{-y / n, x / n, 0}
}

// TotalDryMass returns ∫ρ dV: the conserved dry air mass.
func (s *State) TotalDryMass() float64 {
	var m float64
	nlev := s.NLev
	for c := 0; c < s.G.NCells; c++ {
		a := s.G.CellArea[c]
		for k := 0; k < nlev; k++ {
			m += s.Rho[c*nlev+k] * a * s.Vert.LayerThickness(k)
		}
	}
	return m
}

// TracerMass returns ∫ρ·q dV for tracer t.
func (s *State) TracerMass(t int) float64 {
	var m float64
	nlev := s.NLev
	q := s.Tracers[t]
	for c := 0; c < s.G.NCells; c++ {
		a := s.G.CellArea[c]
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			m += s.Rho[i] * q[i] * a * s.Vert.LayerThickness(k)
		}
	}
	return m
}

// MaxCourant returns the maximum horizontal acoustic Courant number
// (|vn|+cs)·Δt/Δx, the stability-limiting quantity of the explicit
// horizontal step.
func (s *State) MaxCourant(dt float64) float64 {
	cs := math.Sqrt(Cpd / Cvd * Rd * 300) // ≈ sound speed at 300 K
	var maxC float64
	nlev := s.NLev
	for e := 0; e < s.G.NEdges; e++ {
		dx := s.G.DualLength[e]
		for k := 0; k < nlev; k++ {
			c := (math.Abs(s.Vn[e*nlev+k]) + cs) * dt / dx
			if c > maxC {
				maxC = c
			}
		}
	}
	return maxC
}

// CheckFinite panics with a descriptive message if any prognostic field
// contains NaN or Inf; used by long-running tests and examples.
func (s *State) CheckFinite() error {
	check := func(name string, f []float64) error {
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("atmos: %s[%d] = %v", name, i, v)
			}
		}
		return nil
	}
	if err := check("rho", s.Rho); err != nil {
		return err
	}
	if err := check("rhoTheta", s.RhoTheta); err != nil {
		return err
	}
	if err := check("vn", s.Vn); err != nil {
		return err
	}
	return check("w", s.W)
}
