package atmos

import "icoearth/internal/sched"

// Transport advances all tracers with flux-form upwind advection using the
// mass fluxes of the last dycore step. Using the identical mass fluxes as
// the continuity equation guarantees tracer–mass consistency: a spatially
// constant mixing ratio stays exactly constant, and total tracer mass is
// conserved to round-off (no sources).
//
// Each tracer runs four worker-pool sweeps: edge fluxes, horizontal
// divergence per cell, vertical upwind per column, and the mixing-ratio
// update — all writes are disjoint per index, so results do not depend on
// the worker count.
//
// rhoOld must be the density field from before the dycore step.
func (d *Dycore) Transport(dt float64, rhoOld []float64) {
	s := d.S
	g := s.G
	if d.rhoQ == nil {
		d.rhoQ = make([]float64, g.NCells*s.NLev)
		d.qFluxEdge = make([]float64, g.NEdges*s.NLev)
	}
	d.parDt = dt
	d.trRhoOld = rhoOld
	for t := 0; t < NumTracers; t++ {
		d.trQ = s.Tracers[t]
		sched.Run(g.NEdges, d.parTrFluxE)
		sched.Run(g.NCells, d.parTrCell)
		sched.Run(g.NCells, d.parTrVert)
		sched.Run(len(d.trQ), d.parTrMix)
	}
	d.trQ, d.trRhoOld = nil, nil
}

// bindTransport builds the tracer-advection loop bodies (called once from
// bindKernels).
func (d *Dycore) bindTransport() {
	d.parTrFluxE = func(lo, hi int) {
		g := d.S.G
		nlev := d.S.NLev
		q := d.trQ
		massFlux, qFlux := d.MassFluxEdge, d.qFluxEdge
		for e := lo; e < hi; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			for k := 0; k < nlev; k++ {
				f := massFlux[e*nlev+k]
				var qUp float64
				if f >= 0 {
					qUp = q[c0*nlev+k]
				} else {
					qUp = q[c1*nlev+k]
				}
				qFlux[e*nlev+k] = f * qUp
			}
		}
	}

	d.parTrCell = func(lo, hi int) {
		g := d.S.G
		nlev := d.S.NLev
		q, rhoOld, dt := d.trQ, d.trRhoOld, d.parDt
		qFlux, rhoQ := d.qFluxEdge, d.rhoQ
		for c := lo; c < hi; c++ {
			cellEdges, orient := g.CellEdges[c], g.EdgeOrient[c]
			for k := 0; k < nlev; k++ {
				var df float64
				for i, e := range cellEdges {
					df += float64(orient[i]) * g.EdgeLength[e] * qFlux[e*nlev+k]
				}
				i := c*nlev + k
				rhoQ[i] = rhoOld[i]*q[i] - dt*df/g.CellArea[c]
			}
		}
	}

	// Vertical upwind with the implicit mass flux; columns are independent.
	d.parTrVert = func(lo, hi int) {
		s := d.S
		nlev := s.NLev
		q, dt := d.trQ, d.parDt
		massFluxVert, rhoQ := d.MassFluxVert, d.rhoQ
		for c := lo; c < hi; c++ {
			base := c * nlev
			wbase := c * (nlev + 1)
			var fAbove float64 // tracer mass flux through interface k
			for k := 0; k < nlev; k++ {
				var fBelow float64
				if k < nlev-1 {
					mf := massFluxVert[wbase+k+1]
					var qUp float64
					if mf >= 0 { // upward: donor is the level below (k+1)
						qUp = q[base+k+1]
					} else {
						qUp = q[base+k]
					}
					fBelow = mf * qUp
				}
				dz := s.Vert.LayerThickness(k)
				rhoQ[base+k] += dt * (fBelow - fAbove) / dz
				fAbove = fBelow
			}
		}
	}

	// New mixing ratio against the updated density.
	d.parTrMix = func(lo, hi int) {
		q, rhoQ, rho := d.trQ, d.rhoQ, d.S.Rho
		for i := lo; i < hi; i++ {
			q[i] = rhoQ[i] / rho[i]
			if q[i] < 0 {
				q[i] = 0 // clip round-off negatives from the donor scheme
			}
		}
	}
}
