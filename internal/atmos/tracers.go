package atmos

// Transport advances all tracers with flux-form upwind advection using the
// mass fluxes of the last dycore step. Using the identical mass fluxes as
// the continuity equation guarantees tracer–mass consistency: a spatially
// constant mixing ratio stays exactly constant, and total tracer mass is
// conserved to round-off (no sources).
//
// rhoOld must be the density field from before the dycore step.
func (d *Dycore) Transport(dt float64, rhoOld []float64) {
	s := d.S
	g := s.G
	nlev := s.NLev
	if d.rhoQ == nil {
		d.rhoQ = make([]float64, g.NCells*nlev)
		d.qFluxEdge = make([]float64, g.NEdges*nlev)
	}
	for t := 0; t < NumTracers; t++ {
		q := s.Tracers[t]
		// Horizontal flux: donor-cell upwind with the stored mass flux.
		for e := 0; e < g.NEdges; e++ {
			c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
			for k := 0; k < nlev; k++ {
				f := d.MassFluxEdge[e*nlev+k]
				var qUp float64
				if f >= 0 {
					qUp = q[c0*nlev+k]
				} else {
					qUp = q[c1*nlev+k]
				}
				d.qFluxEdge[e*nlev+k] = f * qUp
			}
		}
		for c := 0; c < g.NCells; c++ {
			for k := 0; k < nlev; k++ {
				var df float64
				for i, e := range g.CellEdges[c] {
					df += float64(g.EdgeOrient[c][i]) * g.EdgeLength[e] * d.qFluxEdge[e*nlev+k]
				}
				i := c*nlev + k
				d.rhoQ[i] = rhoOld[i]*q[i] - dt*df/g.CellArea[c]
			}
		}
		// Vertical upwind with the implicit mass flux.
		for c := 0; c < g.NCells; c++ {
			base := c * nlev
			wbase := c * (nlev + 1)
			var fAbove float64 // tracer mass flux through interface k
			for k := 0; k < nlev; k++ {
				var fBelow float64
				if k < nlev-1 {
					mf := d.MassFluxVert[wbase+k+1]
					var qUp float64
					if mf >= 0 { // upward: donor is the level below (k+1)
						qUp = q[base+k+1]
					} else {
						qUp = q[base+k]
					}
					fBelow = mf * qUp
				}
				dz := s.Vert.LayerThickness(k)
				d.rhoQ[base+k] += dt * (fBelow - fAbove) / dz
				fAbove = fBelow
			}
		}
		// New mixing ratio against the updated density.
		for i := range q {
			q[i] = d.rhoQ[i] / s.Rho[i]
			if q[i] < 0 {
				q[i] = 0 // clip round-off negatives from the donor scheme
			}
		}
	}
}
