package atmos

import (
	"fmt"
	"testing"

	"icoearth/internal/sched"
)

// runBaroclinicKernels is runBaroclinic with the hot-kernel seam
// selected: the full dycore step plus tracer transport under either the
// SDFG-generated kernels (the default) or the retained hand twins.
func runBaroclinicKernels(width, steps int, kernels string) *State {
	sched.SetWorkers(width)
	defer sched.SetWorkers(0)
	g, vert := testGrid()
	s := NewState(g, vert)
	s.InitBaroclinic(288, 30)
	s.InitTracers()
	dy := NewDycore(s)
	dy.SetKernels(kernels)
	rhoOld := make([]float64, len(s.Rho))
	for n := 0; n < steps; n++ {
		copy(rhoOld, s.Rho)
		dy.Step(150)
		dy.Transport(150, rhoOld)
	}
	return s
}

// TestDycoreHandGenBitIdentical: the generated kernels must reproduce
// the hand twins bit for bit (%x compare of every prognostic field)
// through full dycore steps, across the workers {1,4} matrix. Together
// with TestGeneratedThreeWayBitIdentical (internal/gen) this closes the
// interpreter == hand == generated chain the codegen PR promises.
func TestDycoreHandGenBitIdentical(t *testing.T) {
	fingerprint := func(s *State) string {
		return fmt.Sprintf("%x %x %x %x %x %x %x",
			s.Vn, s.W, s.Rho, s.RhoTheta, s.Exner,
			s.Tracers[TracerCO2], s.Tracers[TracerO3])
	}
	want := fingerprint(runBaroclinicKernels(1, 8, "gen"))
	for _, tc := range []struct {
		workers int
		kernels string
	}{
		{1, "hand"},
		{4, "gen"},
		{4, "hand"},
	} {
		got := fingerprint(runBaroclinicKernels(tc.workers, 8, tc.kernels))
		if got != want {
			t.Errorf("kernels=%s workers=%d diverges from kernels=gen workers=1 after 8 steps",
				tc.kernels, tc.workers)
		}
	}
}
