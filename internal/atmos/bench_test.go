package atmos

import (
	"runtime"
	"testing"
	"time"

	"icoearth/internal/grid"
	"icoearth/internal/sched"
	"icoearth/internal/vertical"
)

func benchState(lev int, nlev int) (*State, *Dycore) {
	g := grid.New(grid.R2B(lev))
	vert := vertical.NewAtmosphere(nlev, 30000, 200)
	s := NewState(g, vert)
	s.InitBaroclinic(288, 25)
	s.InitTracers()
	return s, NewDycore(s)
}

func BenchmarkDycoreStepR2B3(b *testing.B) {
	s, dy := benchState(3, 20)
	b.SetBytes(int64(8 * (len(s.Rho)*6 + len(s.Vn)*4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dy.Step(120)
	}
	if err := s.CheckFinite(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDycoreStepSpeedup measures the worker pool's payoff on the
// dycore step: wall time at pool width 1 over width 4, reported as the
// gated parallel_speedup_x metric (contract: ≥1.8× on a 4-core runner).
// Machines with fewer than 4 cores skip — a 4-wide pool on 1 hardware
// thread measures oversubscription, not the scheduler.
func BenchmarkDycoreStepSpeedup(b *testing.B) {
	if runtime.NumCPU() < 4 {
		b.Skipf("need ≥4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	elapsed := func(width int) time.Duration {
		sched.SetWorkers(width)
		defer sched.SetWorkers(0)
		s, dy := benchState(3, 20)
		dy.Step(120) // warm scratch + pool
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			dy.Step(120)
		}
		d := time.Since(t0)
		if err := s.CheckFinite(); err != nil {
			b.Fatal(err)
		}
		return d
	}
	serial := elapsed(1)
	parallel := elapsed(4)
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "parallel_speedup_x")
}

func BenchmarkTracerTransport(b *testing.B) {
	s, dy := benchState(3, 20)
	rhoOld := make([]float64, len(s.Rho))
	copy(rhoOld, s.Rho)
	dy.Step(120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dy.Transport(120, rhoOld)
	}
}

func BenchmarkPhysicsStep(b *testing.B) {
	s, _ := benchState(3, 20)
	p := NewPhysics(s)
	bc := SurfaceBC{Tsfc: make([]float64, s.G.NCells), IsWater: make([]bool, s.G.NCells)}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 290
		bc.IsWater[c] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(120, bc)
	}
}

func BenchmarkRadiationStep(b *testing.B) {
	s, _ := benchState(3, 20)
	r := NewRadiation()
	bc := SurfaceBC{Tsfc: make([]float64, s.G.NCells)}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 290
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(s, 120, bc)
	}
}

func BenchmarkVerticalSolve(b *testing.B) {
	_, dy := benchState(3, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dy.StageVertical(120)
	}
}

func BenchmarkShallowWaterStep(b *testing.B) {
	g := grid.New(grid.R2B(4))
	s := NewShallowWater(g, 1000)
	s.InitGaussianBump(0.5, 1.0, 0.3, 10)
	b.SetBytes(int64(8 * (g.NCells + 2*g.NEdges)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(10)
	}
}
