package atmos

import (
	"math"
	"testing"

	"icoearth/internal/grid"
	"icoearth/internal/vertical"
)

func TestEnergyBudgetComponents(t *testing.T) {
	g := grid.New(grid.R2B(1))
	vert := vertical.NewAtmosphere(10, 30000, 300)
	s := NewState(g, vert)
	s.InitIsothermalRest(288)
	e := s.Energy()
	if e.Kinetic != 0 {
		t.Errorf("resting state has kinetic energy %v", e.Kinetic)
	}
	if e.Internal <= 0 || e.Potential <= 0 {
		t.Errorf("nonpositive energies: %+v", e)
	}
	// Order of magnitude: internal ≈ cv·T·M with M ≈ p0/g per m² × area.
	mass := 1e5 / Grav * g.TotalArea()
	wantI := Cvd * 255 * mass // mass-weighted mean T below an isothermal column top
	if e.Internal < 0.3*wantI || e.Internal > 1.5*wantI {
		t.Errorf("internal energy %v vs scale %v", e.Internal, wantI)
	}
	if e.Total() != e.Internal+e.Potential+e.Kinetic {
		t.Error("total mismatch")
	}
	// Winds add kinetic energy.
	for i := range s.Vn {
		s.Vn[i] = 10
	}
	if s.Energy().Kinetic <= 0 {
		t.Error("no kinetic energy with wind")
	}
}

// TestAdiabaticEnergyNearConservation: the dycore alone (no physics)
// conserves total energy to a small fraction over a short integration;
// damping and upwinding bleed a little, but nothing order-one.
func TestAdiabaticEnergyNearConservation(t *testing.T) {
	g := grid.New(grid.R2B(2))
	vert := vertical.NewAtmosphere(10, 30000, 300)
	s := NewState(g, vert)
	s.InitBaroclinic(288, 20)
	dy := NewDycore(s)
	e0 := s.Energy().Total()
	for n := 0; n < 50; n++ {
		dy.Step(120)
	}
	e1 := s.Energy().Total()
	if rel := math.Abs(e1-e0) / e0; rel > 1e-4 {
		t.Errorf("adiabatic energy drift = %e over 50 steps", rel)
	}
}

// TestPhysicsMovesEnergy: Held–Suarez relaxation from a warm isothermal
// state removes energy (cooling toward Teq aloft).
func TestPhysicsMovesEnergy(t *testing.T) {
	g := grid.New(grid.R2B(1))
	vert := vertical.NewAtmosphere(10, 30000, 300)
	s := NewState(g, vert)
	s.InitIsothermalRest(310) // warmer than Teq almost everywhere
	p := NewPhysics(s)
	p.MoistureOn = false
	e0 := s.Energy().Internal
	for n := 0; n < 50; n++ {
		p.Step(3600, SurfaceBC{})
	}
	if s.Energy().Internal >= e0 {
		t.Error("relaxation from a hot state did not remove internal energy")
	}
}
