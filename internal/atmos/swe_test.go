package atmos

import (
	"math"
	"testing"

	"icoearth/internal/grid"
	"icoearth/internal/par"
)

func TestShallowWaterVolumeConservation(t *testing.T) {
	g := grid.New(grid.R2B(3))
	s := NewShallowWater(g, 1000)
	s.InitGaussianBump(0.5, 1.0, 0.3, 10)
	v0 := s.TotalVolume()
	dt := stableSWEDt(g, s.H0)
	for n := 0; n < 200; n++ {
		s.Step(dt)
	}
	v1 := s.TotalVolume()
	scale := 10 * g.TotalArea() / float64(g.NCells) * 50 // bump volume scale
	if math.Abs(v1-v0) > 1e-9*scale {
		t.Errorf("volume drift: %v → %v", v0, v1)
	}
}

func TestShallowWaterEnergyBounded(t *testing.T) {
	g := grid.New(grid.R2B(2))
	s := NewShallowWater(g, 1000)
	s.InitGaussianBump(0.3, -0.8, 0.25, 5)
	e0 := s.Energy()
	dt := stableSWEDt(g, s.H0)
	var maxE float64
	for n := 0; n < 500; n++ {
		s.Step(dt)
		if e := s.Energy(); e > maxE {
			maxE = e
		}
	}
	// Forward-backward stepping conserves a shadow energy: the true energy
	// oscillates but must stay within a few percent of its initial value.
	if maxE > 1.05*e0 || s.Energy() < 0.9*e0 {
		t.Errorf("energy not bounded: e0=%v max=%v final=%v", e0, maxE, s.Energy())
	}
}

func TestShallowWaterWavesPropagate(t *testing.T) {
	g := grid.New(grid.R2B(3))
	s := NewShallowWater(g, 1000)
	s.InitGaussianBump(0.5, 1.0, 0.2, 10)
	// The antipode starts flat; after enough time for the gravity wave
	// (c=√(gH)≈99 m/s) to travel there, it must have been disturbed.
	var anti int
	best := 2.0
	for c := range s.H {
		lat, lon := g.CellCenter[c].LatLon()
		d := math.Abs(lat+0.5) + math.Abs(lon-1.0+math.Pi)
		if d < best {
			best, anti = d, c
		}
	}
	if math.Abs(s.H[anti]) > 1e-3 {
		t.Fatalf("antipode not flat initially: %v", s.H[anti])
	}
	dt := stableSWEDt(g, s.H0)
	travel := math.Pi * 6.371229e6 / math.Sqrt(Grav*s.H0)
	steps := int(travel/dt) + 100
	for n := 0; n < steps; n++ {
		s.Step(dt)
	}
	if math.Abs(s.H[anti]) < 1e-3 {
		t.Errorf("gravity wave never reached the antipode: %v after %d steps", s.H[anti], steps)
	}
}

// TestDistributedMatchesSerialBitwise: the central claim — running on N
// ranks with halo exchanges reproduces the serial trajectory exactly.
func TestDistributedMatchesSerialBitwise(t *testing.T) {
	g := grid.New(grid.R2B(2))
	const h0 = 1000.0
	dt := stableSWEDt(g, h0)
	const steps = 50

	serial := NewShallowWater(g, h0)
	serial.InitGaussianBump(0.4, 0.9, 0.3, 8)
	for n := 0; n < steps; n++ {
		serial.Step(dt)
	}

	for _, nranks := range []int{2, 3, 5, 8} {
		d, err := grid.Decompose(g, nranks)
		if err != nil {
			t.Fatal(err)
		}
		var result []float64
		w := par.NewWorld(nranks)
		w.Run(func(c *par.Comm) {
			s := NewDistShallowWater(g, h0, d, c)
			s.InitGaussianBump(0.4, 0.9, 0.3, 8)
			for n := 0; n < steps; n++ {
				s.Step(dt)
			}
			if c.Rank == 0 {
				result = s.Gather(c)
			} else {
				s.Gather(c)
			}
			if s.HaloExchanges != steps {
				t.Errorf("rank %d: %d halo exchanges, want %d", c.Rank, s.HaloExchanges, steps)
			}
		})
		for c := range result {
			if result[c] != serial.H[c] {
				t.Fatalf("nranks=%d: cell %d differs: dist %v vs serial %v",
					nranks, c, result[c], serial.H[c])
			}
		}
	}
}

// TestDistributedVolumeConservation: the sum of rank-local volumes is
// conserved across ranks and steps.
func TestDistributedVolumeConservation(t *testing.T) {
	g := grid.New(grid.R2B(2))
	const nranks = 4
	d, _ := grid.Decompose(g, nranks)
	dt := stableSWEDt(g, 1000)
	w := par.NewWorld(nranks)
	w.Run(func(c *par.Comm) {
		s := NewDistShallowWater(g, 1000, d, c)
		s.InitGaussianBump(0.4, 0.9, 0.3, 8)
		v0 := c.AllreduceSum(s.LocalVolume())
		for n := 0; n < 100; n++ {
			s.Step(dt)
		}
		v1 := c.AllreduceSum(s.LocalVolume())
		if math.Abs(v1-v0) > 1e-6*math.Abs(v0)+1e-3 {
			t.Errorf("rank %d: distributed volume drift %v → %v", c.Rank, v0, v1)
		}
	})
}

// stableSWEDt returns a timestep safely below the gravity-wave CFL limit.
func stableSWEDt(g *grid.Grid, h0 float64) float64 {
	minDx := math.Inf(1)
	for e := range g.DualLength {
		minDx = math.Min(minDx, g.DualLength[e])
	}
	return 0.3 * minDx / math.Sqrt(Grav*h0)
}

// TestShallowWaterWellBalancedOverTopography: a lake at rest over a
// mountain (free surface flat, layer thinner over the bump) must stay at
// rest exactly — the discrete well-balancedness property.
func TestShallowWaterWellBalancedOverTopography(t *testing.T) {
	g := grid.New(grid.R2B(2))
	s := NewShallowWater(g, 1000)
	s.Topo = make([]float64, g.NCells)
	for c := range s.Topo {
		lat, lon := g.CellCenter[c].LatLon()
		d2 := (lat-0.4)*(lat-0.4) + (lon-1.0)*(lon-1.0)
		s.Topo[c] = 200 * math.Exp(-d2/0.1)
		s.H[c] = -s.Topo[c] // flat free surface
	}
	dt := stableSWEDt(g, s.H0)
	for n := 0; n < 100; n++ {
		s.Step(dt)
	}
	for e, u := range s.U {
		if math.Abs(u) > 1e-10 {
			t.Fatalf("lake at rest developed flow %v at edge %d", u, e)
		}
	}
}

// TestShallowWaterTopographyScattersWave: the same mountain scatters a
// passing gravity wave (the field differs from the flat-bottom run).
func TestShallowWaterTopographyScattersWave(t *testing.T) {
	g := grid.New(grid.R2B(2))
	run := func(withTopo bool) []float64 {
		s := NewShallowWater(g, 1000)
		if withTopo {
			s.Topo = make([]float64, g.NCells)
			for c := range s.Topo {
				lat, lon := g.CellCenter[c].LatLon()
				d2 := (lat-0.2)*(lat-0.2) + (lon+0.5)*(lon+0.5)
				s.Topo[c] = 300 * math.Exp(-d2/0.05)
			}
		}
		s.InitGaussianBump(0.5, 1.0, 0.3, 5)
		dt := stableSWEDt(g, s.H0)
		for n := 0; n < 150; n++ {
			s.Step(dt)
		}
		return s.H
	}
	flat := run(false)
	mount := run(true)
	var diff float64
	for c := range flat {
		diff += math.Abs(flat[c] - mount[c])
	}
	if diff == 0 {
		t.Error("topography had no effect on the wave field")
	}
}
