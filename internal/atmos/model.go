package atmos

import (
	"icoearth/internal/exec"
	"icoearth/internal/grid"
	"icoearth/internal/vertical"
)

// Model is the atmosphere component as the coupler sees it: it owns the
// state, dynamical core and physics, and submits its work as named kernels
// to an exec.Device so that the simulated-machine clock and per-kernel
// statistics reflect the paper's kernel structure (data stays "resident"
// on the device — no transfers appear between kernels).
type Model struct {
	State *State
	Dyn   *Dycore
	Phys  *Physics
	// Rad, when non-nil, applies gray two-stream radiation each step (the
	// alternative to pure Held-Suarez forcing).
	Rad *Radiation
	Dev *exec.Device

	rhoOld []float64
	steps  int
}

// NewModel assembles the atmosphere on grid g with the given vertical
// coordinate, executing on dev.
func NewModel(g *grid.Grid, vert *vertical.Atmosphere, dev *exec.Device) *Model {
	s := NewState(g, vert)
	return &Model{
		State:  s,
		Dyn:    NewDycore(s),
		Phys:   NewPhysics(s),
		Dev:    dev,
		rhoOld: make([]float64, g.NCells*vert.NLev),
	}
}

// cellBytes returns the size of one full-level cell field in bytes.
func (m *Model) cellBytes() float64 {
	return float64(m.State.G.NCells * m.State.NLev * 8)
}

func (m *Model) edgeBytes() float64 {
	return float64(m.State.G.NEdges * m.State.NLev * 8)
}

// Step advances the atmosphere by dt, launching the dycore stages, tracer
// transport and physics as device kernels, and returns the surface fluxes
// for the coupler.
func (m *Model) Step(dt float64, bc SurfaceBC) *SurfaceFluxes {
	cb, eb := m.cellBytes(), m.edgeBytes()
	d := m.Dyn
	s := m.State
	copy(m.rhoOld, s.Rho)

	m.Dev.Launch(exec.Kernel{
		Name: "dycore:diag", Bytes: 4 * cb,
		Reads: []string{"rho", "rhotheta"}, Writes: []string{"exner", "theta"},
		Run: func() { s.UpdateDiagnostics() },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:ekinh", Bytes: eb + cb,
		Reads: []string{"vn"}, Writes: []string{"ke"},
		Run: func() { d.KineticEnergyKernel() },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:tangential", Bytes: 2*eb + cb,
		Reads: []string{"vn"}, Writes: []string{"vt"},
		Run: func() { d.TangentialKernel() },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:vn_pred", Bytes: 3*eb + 3*cb,
		Reads: []string{"vn", "exner", "ke", "vt", "rho", "rhotheta"}, Writes: []string{"vn_pred"},
		Run: func() { d.StagePredictor(dt) },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:hflux", Bytes: 4*eb + 4*cb,
		Reads: []string{"vn", "vn_pred", "rho", "rhotheta"}, Writes: []string{"rho", "rhotheta", "massflux"},
		Run: func() { d.StageHorizontalFluxes(dt) },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:vsolve", Bytes: 6 * cb,
		Reads: []string{"rho", "rhotheta", "w"}, Writes: []string{"w", "rho", "rhotheta", "massflux_v"},
		Run: func() { d.StageVertical(dt) },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:vn_corr", Bytes: 3*eb + 3*cb,
		Reads: []string{"vn", "exner", "rhotheta", "ke", "vt"}, Writes: []string{"vn"},
		Run: func() { d.StageCorrector(dt) },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "dycore:damp", Bytes: 2*eb + 3*cb,
		Reads: []string{"vn", "w"}, Writes: []string{"vn", "w", "exner", "theta"},
		Run: func() { d.StageDamping(dt) },
	})
	m.Dev.Launch(exec.Kernel{
		Name: "transport", Bytes: float64(NumTracers) * (2*cb + eb),
		Reads: []string{"massflux", "massflux_v", "rho", "tracers"}, Writes: []string{"tracers"},
		Run: func() { d.Transport(dt, m.rhoOld) },
	})

	if m.Rad != nil {
		m.Dev.Launch(exec.Kernel{
			Name: "radiation", Bytes: 5 * cb,
			Reads: []string{"rho", "rhotheta", "exner", "tracers"}, Writes: []string{"rhotheta", "radflux"},
			Run: func() { m.Rad.Step(m.State, dt, bc) },
		})
	}

	var fluxes *SurfaceFluxes
	m.Dev.Launch(exec.Kernel{
		Name: "physics", Bytes: 6 * cb,
		Reads: []string{"rho", "rhotheta", "exner", "tracers", "vn"}, Writes: []string{"rhotheta", "tracers", "vn", "sfcflux"},
		Run: func() { fluxes = m.Phys.Step(dt, bc) },
	})
	m.steps++
	return fluxes
}

// Steps returns the number of completed steps.
func (m *Model) Steps() int { return m.steps }

// BytesPerStep returns the modelled DRAM traffic of one full atmosphere
// step, the quantity the performance model scales to paper-size grids.
func (m *Model) BytesPerStep() float64 {
	cb, eb := m.cellBytes(), m.edgeBytes()
	return (4 * cb) + (eb + cb) + (2*eb + cb) + (3*eb + 3*cb) + (4*eb + 4*cb) + (6 * cb) + (3*eb + 3*cb) + (2*eb + 3*cb) +
		float64(NumTracers)*(2*cb+eb) + (6 * cb)
}
