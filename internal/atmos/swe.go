package atmos

import (
	"math"

	"icoearth/internal/grid"
	"icoearth/internal/par"
	"icoearth/internal/sphere"
)

// Shallow-water equations on the icosahedral C-grid: the distributed-
// memory demonstrator of the dycore's communication structure. The full
// 3-D dycore in this package runs single-address-space (the paper's
// per-GPU picture, with the machine model supplying the parallel timing);
// the shallow-water system here runs on the par runtime with real ranks,
// halo exchanges and the same discrete operators — the structure of ICON's
// MPI parallelisation with GPU-direct neighbour exchanges.
//
// The linearised system is
//
//	∂u/∂t = −g ∂h/∂n        (edge-normal velocity)
//	∂h/∂t = −H₀ ∇·u          (surface height)
//
// which supports gravity waves and conserves ∫h dA exactly and the energy
// E = ½∫(g h² + H₀ |u|²) up to time-discretisation error.

// ShallowWater is the serial reference implementation.
type ShallowWater struct {
	G  *grid.Grid
	H0 float64 // mean fluid depth, m

	H []float64 // height anomaly at cells
	U []float64 // normal velocity at edges
	// Topo is an optional bottom topography (m); the pressure gradient
	// acts on the free-surface elevation H+Topo, so a state with
	// H = const − Topo is a discrete steady state (well-balancedness —
	// the same property the 3-D dycore needs for its terrain-following
	// coordinate).
	Topo []float64
}

// NewShallowWater builds a resting state with mean depth h0.
func NewShallowWater(g *grid.Grid, h0 float64) *ShallowWater {
	return &ShallowWater{
		G:  g,
		H0: h0,
		H:  make([]float64, g.NCells),
		U:  make([]float64, g.NEdges),
	}
}

// InitGaussianBump puts a height anomaly of the given amplitude at
// (lat0, lon0) with angular half-width sigma.
func (s *ShallowWater) InitGaussianBump(lat0, lon0, sigma, amp float64) {
	center := sphere.FromLatLon(lat0, lon0)
	for c := range s.H {
		d := sphere.ArcLength(s.G.CellCenter[c], center)
		s.H[c] = amp * math.Exp(-d*d/(2*sigma*sigma))
	}
	for e := range s.U {
		s.U[e] = 0
	}
}

// Step advances by dt with forward-backward (symplectic Euler) stepping:
// velocity first with the old height, then height with the new velocity.
func (s *ShallowWater) Step(dt float64) {
	g := s.G
	for e := 0; e < g.NEdges; e++ {
		c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
		eta0, eta1 := s.H[c0], s.H[c1]
		if s.Topo != nil {
			eta0 += s.Topo[c0]
			eta1 += s.Topo[c1]
		}
		s.U[e] -= dt * Grav * (eta1 - eta0) / g.DualLength[e]
	}
	for c := 0; c < g.NCells; c++ {
		var div float64
		for i, e := range g.CellEdges[c] {
			div += float64(g.EdgeOrient[c][i]) * s.U[e] * g.EdgeLength[e]
		}
		s.H[c] -= dt * s.H0 * div / g.CellArea[c]
	}
}

// TotalVolume returns ∫h dA (conserved exactly).
func (s *ShallowWater) TotalVolume() float64 {
	var v float64
	for c, h := range s.H {
		v += h * s.G.CellArea[c]
	}
	return v
}

// Energy returns the conserved quadratic energy ½g Σ h²·A + ½H₀ Σ u²·l·d.
// The edge weight l·d (twice the kite area) makes the gradient exactly
// the negative adjoint of the divergence in these inner products, so the
// semi-discrete energy is conserved exactly and the forward-backward
// stepping bounds it for all time.
func (s *ShallowWater) Energy() float64 {
	g := s.G
	var e float64
	for c, h := range s.H {
		e += 0.5 * Grav * h * h * g.CellArea[c]
	}
	for ed, u := range s.U {
		e += 0.5 * s.H0 * u * u * g.EdgeLength[ed] * g.DualLength[ed]
	}
	return e
}

// --- Distributed version -----------------------------------------------------

// DistShallowWater runs the same system on one rank of a decomposition:
// height lives in the local (owned + halo) layout; velocity is computed
// redundantly on every edge adjacent to an owned or halo cell, which
// requires only the single cell-field halo exchange per step that ICON's
// dycore also performs (the paper's point-to-point GPU-direct exchange).
type DistShallowWater struct {
	G    *grid.Grid
	H0   float64
	part *grid.Partition
	halo *par.HaloExchanger

	// H in local layout; U indexed by global edge id (only edges adjacent
	// to local cells are ever touched).
	H []float64
	U []float64

	// localEdges lists the global edges adjacent to any owned cell (the
	// edges this rank updates).
	localEdges []int

	// Steps and exchange counters for the communication model.
	HaloExchanges int
}

// NewDistShallowWater builds the rank-local state.
func NewDistShallowWater(g *grid.Grid, h0 float64, d *grid.Decomposition, comm *par.Comm) *DistShallowWater {
	p := d.Parts[comm.Rank]
	// Full-grid decompositions are symmetric by construction, so the
	// exchanger cannot fail here.
	halo, err := par.NewHaloExchanger(comm, p)
	if err != nil {
		panic(err)
	}
	s := &DistShallowWater{
		G:    g,
		H0:   h0,
		part: p,
		halo: halo,
		H:    make([]float64, len(p.Owner)+len(p.HaloCells)),
		U:    make([]float64, g.NEdges),
	}
	seen := map[int]bool{}
	for _, c := range p.Owner {
		for _, e := range g.CellEdges[c] {
			if !seen[e] {
				seen[e] = true
				s.localEdges = append(s.localEdges, e) //icovet:ignore hotalloc one-time rank setup, not a kernel loop
			}
		}
	}
	return s
}

// InitGaussianBump mirrors the serial initial condition on local cells.
func (s *DistShallowWater) InitGaussianBump(lat0, lon0, sigma, amp float64) {
	center := sphere.FromLatLon(lat0, lon0)
	set := func(gc, li int) {
		d := sphere.ArcLength(s.G.CellCenter[gc], center)
		s.H[li] = amp * math.Exp(-d*d/(2*sigma*sigma))
	}
	for li, gc := range s.part.Owner {
		set(gc, li)
	}
	for hi, gc := range s.part.HaloCells {
		set(gc, len(s.part.Owner)+hi)
	}
}

// Step advances by dt: one halo exchange of h, then the same
// forward-backward update as the serial code. All ranks call
// collectively. Velocity on edges shared between ranks is computed
// redundantly from identical inputs, so the distributed trajectory is
// bit-identical to the serial one.
func (s *DistShallowWater) Step(dt float64) {
	if err := s.halo.Exchange(s.H, 1); err != nil {
		panic(err)
	}
	s.HaloExchanges++
	g := s.G
	li := s.part.LocalIndex
	for _, e := range s.localEdges {
		c0, c1 := g.EdgeCells[e][0], g.EdgeCells[e][1]
		i0, ok0 := li[c0]
		i1, ok1 := li[c1]
		if !ok0 || !ok1 {
			// An edge of an owned cell whose neighbour is outside the
			// halo cannot happen (halo contains all edge neighbours).
			continue
		}
		s.U[e] -= dt * Grav * (s.H[i1] - s.H[i0]) / g.DualLength[e]
	}
	for lidx, c := range s.part.Owner {
		var div float64
		for i, e := range g.CellEdges[c] {
			div += float64(g.EdgeOrient[c][i]) * s.U[e] * g.EdgeLength[e]
		}
		s.H[lidx] -= dt * s.H0 * div / g.CellArea[c]
	}
}

// Gather collects the global height field at rank 0 (nil elsewhere).
func (s *DistShallowWater) Gather(comm *par.Comm) []float64 {
	own := make([]float64, 2*len(s.part.Owner))
	for i, gc := range s.part.Owner {
		own[2*i] = float64(gc)
		own[2*i+1] = s.H[i]
	}
	parts := comm.Gather(0, own)
	if parts == nil {
		return nil
	}
	out := make([]float64, s.G.NCells)
	for _, p := range parts {
		for i := 0; i+1 < len(p); i += 2 {
			out[int(p[i])] = p[i+1]
		}
	}
	return out
}

// LocalVolume returns the rank's share of ∫h dA.
func (s *DistShallowWater) LocalVolume() float64 {
	var v float64
	for i, gc := range s.part.Owner {
		v += s.H[i] * s.G.CellArea[gc]
	}
	return v
}
