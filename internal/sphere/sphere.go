// Package sphere provides spherical geometry primitives used by the
// icosahedral grid generator and the component models: unit vectors on the
// sphere, great-circle arcs, spherical triangle areas, and local tangent
// frames.
//
// All positions are represented as unit vectors in Cartesian coordinates
// (Vec3) rather than latitude/longitude pairs; this avoids pole singularities
// and keeps the geometry code branch-free. Conversions to and from
// geographic coordinates are provided for I/O and diagnostics.
package sphere

import "math"

// EarthRadius is the mean Earth radius in metres, as used by ICON.
const EarthRadius = 6.371229e6

// Vec3 is a vector in 3-D Cartesian space. Grid positions are unit vectors;
// intermediate results (sums, cross products) generally are not.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the scalar product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Midpoint returns the spherical midpoint of two unit vectors, i.e. the
// normalized chord midpoint. For antipodal points the result is undefined
// but finite.
func Midpoint(a, b Vec3) Vec3 {
	return a.Add(b).Normalize()
}

// Centroid returns the normalized centroid of three unit vectors; this is
// the circumcentre-free barycentre used for triangle cell centres.
func Centroid(a, b, c Vec3) Vec3 {
	return a.Add(b).Add(c).Normalize()
}

// Circumcenter returns the circumcentre of the spherical triangle (a,b,c):
// the unit vector equidistant from all three vertices. The orientation is
// chosen so the centre lies on the same side as the triangle barycentre.
// Circumcentres of the primal triangles are the vertices of the dual
// (hexagon/pentagon) grid.
func Circumcenter(a, b, c Vec3) Vec3 {
	n := b.Sub(a).Cross(c.Sub(a)).Normalize()
	if n.Dot(Centroid(a, b, c)) < 0 {
		n = n.Scale(-1)
	}
	return n
}

// ArcLength returns the great-circle distance between unit vectors a and b
// in radians. It uses atan2 of the cross/dot products, which is accurate for
// both small and near-antipodal separations.
func ArcLength(a, b Vec3) float64 {
	return math.Atan2(a.Cross(b).Norm(), a.Dot(b))
}

// TriangleArea returns the area of the spherical triangle with unit-vector
// vertices a, b, c on the unit sphere (steradians), using L'Huilier's
// theorem. The result is always non-negative.
func TriangleArea(a, b, c Vec3) float64 {
	la := ArcLength(b, c)
	lb := ArcLength(c, a)
	lc := ArcLength(a, b)
	s := (la + lb + lc) / 2
	t := math.Tan(s/2) * math.Tan((s-la)/2) * math.Tan((s-lb)/2) * math.Tan((s-lc)/2)
	if t <= 0 {
		return 0
	}
	return 4 * math.Atan(math.Sqrt(t))
}

// LatLon converts a unit vector to (latitude, longitude) in radians.
// Latitude is in [-π/2, π/2], longitude in (-π, π].
func (v Vec3) LatLon() (lat, lon float64) {
	lat = math.Asin(math.Max(-1, math.Min(1, v.Z)))
	lon = math.Atan2(v.Y, v.X)
	return lat, lon
}

// FromLatLon builds a unit vector from latitude and longitude in radians.
func FromLatLon(lat, lon float64) Vec3 {
	c := math.Cos(lat)
	return Vec3{c * math.Cos(lon), c * math.Sin(lon), math.Sin(lat)}
}

// TangentEast returns the unit vector pointing locally east at p.
// At the poles the direction is arbitrary but well-defined.
func TangentEast(p Vec3) Vec3 {
	e := Vec3{-p.Y, p.X, 0}
	if e.Norm() < 1e-12 {
		return Vec3{1, 0, 0}
	}
	return e.Normalize()
}

// TangentNorth returns the unit vector pointing locally north at p.
func TangentNorth(p Vec3) Vec3 {
	return p.Cross(TangentEast(p)).Normalize()
}

// Slerp performs spherical linear interpolation between unit vectors a and b
// with parameter t in [0,1].
func Slerp(a, b Vec3, t float64) Vec3 {
	omega := ArcLength(a, b)
	if omega < 1e-12 {
		return a
	}
	so := math.Sin(omega)
	return a.Scale(math.Sin((1-t)*omega) / so).Add(b.Scale(math.Sin(t*omega) / so)).Normalize()
}
