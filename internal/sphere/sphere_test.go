package sphere

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-2, 0.5, 4}
	if got := a.Add(b); got != (Vec3{-1, 2.5, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{3, 1.5, -1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != -2+1+12 {
		t.Errorf("Dot = %v", got)
	}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, 1e-12) || !almostEq(c.Dot(b), 0, 1e-12) {
		t.Errorf("Cross not orthogonal: %v", c)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if !almostEq(v.Norm(), 1, 1e-15) {
		t.Errorf("Norm after Normalize = %v", v.Norm())
	}
	z := Vec3{}
	if z.Normalize() != z {
		t.Errorf("zero vector should normalize to itself")
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	f := func(lat, lon float64) bool {
		lat = math.Mod(lat, math.Pi/2*0.999)
		lon = math.Mod(lon, math.Pi*0.999)
		p := FromLatLon(lat, lon)
		la, lo := p.LatLon()
		return almostEq(la, lat, 1e-12) && almostEq(lo, lon, 1e-12) && almostEq(p.Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArcLength(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if !almostEq(ArcLength(a, b), math.Pi/2, 1e-14) {
		t.Errorf("quarter arc = %v", ArcLength(a, b))
	}
	if !almostEq(ArcLength(a, a), 0, 1e-14) {
		t.Errorf("zero arc = %v", ArcLength(a, a))
	}
	c := Vec3{-1, 0, 0}
	if !almostEq(ArcLength(a, c), math.Pi, 1e-14) {
		t.Errorf("antipodal arc = %v", ArcLength(a, c))
	}
}

func TestArcLengthSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		p := FromLatLon(math.Mod(a1, 1.5), math.Mod(a2, 3))
		q := FromLatLon(math.Mod(b1, 1.5), math.Mod(b2, 3))
		return almostEq(ArcLength(p, q), ArcLength(q, p), 1e-13)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleAreaOctant(t *testing.T) {
	// One octant of the sphere has area 4π/8 = π/2.
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	c := Vec3{0, 0, 1}
	if got := TriangleArea(a, b, c); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("octant area = %v want %v", got, math.Pi/2)
	}
}

func TestTriangleAreaDegenerate(t *testing.T) {
	a := Vec3{1, 0, 0}
	if got := TriangleArea(a, a, a); got != 0 {
		t.Errorf("degenerate area = %v", got)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	a := FromLatLon(0.3, 0.1)
	b := FromLatLon(0.5, 0.4)
	c := FromLatLon(0.2, 0.5)
	cc := Circumcenter(a, b, c)
	da := ArcLength(cc, a)
	db := ArcLength(cc, b)
	dc := ArcLength(cc, c)
	if !almostEq(da, db, 1e-12) || !almostEq(db, dc, 1e-12) {
		t.Errorf("circumcenter not equidistant: %v %v %v", da, db, dc)
	}
	if cc.Dot(Centroid(a, b, c)) < 0 {
		t.Errorf("circumcenter on wrong side")
	}
}

func TestMidpointSlerpAgree(t *testing.T) {
	a := FromLatLon(0.3, 0.1)
	b := FromLatLon(-0.2, 1.4)
	m := Midpoint(a, b)
	s := Slerp(a, b, 0.5)
	if !almostEq(ArcLength(m, s), 0, 1e-12) {
		t.Errorf("midpoint != slerp(0.5): %v vs %v", m, s)
	}
}

func TestTangentFrame(t *testing.T) {
	p := FromLatLon(0.7, -1.2)
	e := TangentEast(p)
	n := TangentNorth(p)
	if !almostEq(e.Dot(p), 0, 1e-12) || !almostEq(n.Dot(p), 0, 1e-12) {
		t.Errorf("tangents not tangent")
	}
	if !almostEq(e.Dot(n), 0, 1e-12) {
		t.Errorf("east/north not orthogonal")
	}
	// North should increase latitude.
	q := p.Add(n.Scale(1e-6)).Normalize()
	latp, _ := p.LatLon()
	latq, _ := q.LatLon()
	if latq <= latp {
		t.Errorf("north tangent decreases latitude")
	}
	// East should increase longitude.
	r := p.Add(e.Scale(1e-6)).Normalize()
	_, lonp := p.LatLon()
	_, lonr := r.LatLon()
	if lonr <= lonp {
		t.Errorf("east tangent decreases longitude")
	}
}

func TestSlerpEndpoints(t *testing.T) {
	a := FromLatLon(0.3, 0.1)
	b := FromLatLon(-0.9, 2.0)
	if d := ArcLength(Slerp(a, b, 0), a); !almostEq(d, 0, 1e-12) {
		t.Errorf("slerp(0) != a")
	}
	if d := ArcLength(Slerp(a, b, 1), b); !almostEq(d, 0, 1e-12) {
		t.Errorf("slerp(1) != b")
	}
}
