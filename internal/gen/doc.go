// Package gen holds the SDFG-generated production kernels: for every
// kernel in sdfg.ProductionKernels(), a binder
//
//	func Bind<Name>(nInner int, <fields...> []float64, <tables...> []int) func(lo, hi int)
//
// that captures concrete storage once and returns an NPROMA block body
// for sched.Run. kernels_gen.go is written by cmd/codegen from the DSL
// sources in internal/sdfg/genkernels.go — edit those sources (or the
// emitter) and re-run `go generate ./internal/gen`, never the generated
// file; CI diffs a fresh generation against the committed one, so the
// two cannot drift. See DESIGN.md §15 for the ABI, the block contract
// and the bit-identity argument.
package gen

//go:generate go run icoearth/cmd/codegen -out kernels_gen.go -pkg gen
