package gen_test

import (
	"fmt"
	"math"
	"testing"

	"icoearth/internal/gen"
	"icoearth/internal/grid"
	"icoearth/internal/sched"
	"icoearth/internal/sdfg"
)

// Three-way bit-exactness over every production kernel: the SDFG
// interpreter (the directive baseline), the closure-compiled backend, and
// the generated package this directory holds must produce bit-identical
// (%x-compared) outputs from identical inputs — and the generated form
// must stay bit-identical at every worker-pool width. This is the
// acceptance proof that lets the generated kernels be the default: no
// term was reordered anywhere between the DSL source and the shipped Go.

// kernelIO names each production kernel's dynamic (non-grid-owned)
// fields and which of them are outputs. Grid-owned coefficient slices
// (orientation, kinetic, tangent, Laplacian weights, lengths, areas) are
// live grid storage and keep their real values.
var kernelIO = map[string]struct {
	inputs  []string
	outputs []string
}{
	"ke_vn":      {inputs: []string{"vn"}, outputs: []string{"ke"}},
	"perot_uc":   {inputs: []string{"vn", "px1", "px2", "px3", "py1", "py2", "py3", "pz1", "pz2", "pz3"}, outputs: []string{"ucx", "ucy", "ucz"}},
	"perot_vt":   {inputs: []string{"ucx", "ucy", "ucz"}, outputs: []string{"vt"}},
	"div_cell":   {inputs: []string{"un"}, outputs: []string{"div"}},
	"grad_edge":  {inputs: []string{"psi"}, outputs: []string{"grad"}},
	"lap_cell":   {inputs: []string{"psi"}, outputs: []string{"lap"}},
	"lap_levels": {inputs: []string{"psi"}, outputs: []string{"lap"}},
}

// bindGenerated dispatches the generated binder for one production
// kernel over the bindings' slices, returning the block body and the
// horizontal extent to run it over.
func bindGenerated(name string, g *grid.Grid, b *sdfg.Bindings, nlev int) (func(lo, hi int), int) {
	f := func(n string) []float64 { return b.Fields[n] }
	t := func(n string) []int { return b.Tables[n] }
	switch name {
	case "ke_vn":
		return gen.BindKeVn(nlev, f("blnc1"), f("blnc2"), f("blnc3"), f("ke"), f("vn"),
			t("iel1"), t("iel2"), t("iel3")), g.NCells
	case "perot_uc":
		return gen.BindPerotUc(nlev,
			f("px1"), f("px2"), f("px3"), f("py1"), f("py2"), f("py3"), f("pz1"), f("pz2"), f("pz3"),
			f("ucx"), f("ucy"), f("ucz"), f("vn"), t("iel1"), t("iel2"), t("iel3")), g.NCells
	case "perot_vt":
		return gen.BindPerotVt(nlev, f("tx"), f("ty"), f("tz"),
			f("ucx"), f("ucy"), f("ucz"), f("vt"), t("icell1"), t("icell2")), g.NEdges
	case "div_cell":
		return gen.BindDivCell(f("area"), f("div"), f("elen"), f("o1"), f("o2"), f("o3"),
			f("un"), t("iel1"), t("iel2"), t("iel3")), g.NCells
	case "grad_edge":
		return gen.BindGradEdge(f("dlen"), f("grad"), f("psi"), t("icell1"), t("icell2")), g.NEdges
	case "lap_cell":
		return gen.BindLapCell(f("area"), f("dlen"), f("elen"), f("lap"), f("o1"), f("o2"), f("o3"),
			f("psi"), t("icell1"), t("icell2"), t("iel1"), t("iel2"), t("iel3")), g.NCells
	case "lap_levels":
		return gen.BindLapLevels(nlev, f("lap"), f("psi"), f("w1"), f("w2"), f("w3"),
			t("icell1"), t("icell2"), t("iel1"), t("iel2"), t("iel3")), g.NCells
	}
	return nil, 0
}

func TestGeneratedThreeWayBitIdentical(t *testing.T) {
	g := grid.New(grid.R2B(2))
	const nlev = 5
	defer sched.SetWorkers(0)

	for _, pk := range sdfg.ProductionKernels() {
		t.Run(pk.Name, func(t *testing.T) {
			io, ok := kernelIO[pk.Name]
			if !ok {
				t.Fatalf("kernel %s has no I/O recipe — update kernelIO", pk.Name)
			}
			sd, b, err := sdfg.BindProduction(pk.Name, g, nlev)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic non-trivial inputs, different per field.
			for fi, name := range io.inputs {
				data := b.Fields[name]
				for i := range data {
					data[i] = math.Sin(float64(i)*0.7 + float64(fi))
				}
			}
			snapshot := func() string {
				s := ""
				for _, name := range io.outputs {
					s += fmt.Sprintf("%x\n", b.Fields[name])
				}
				return s
			}
			reset := func() {
				for _, name := range io.outputs {
					data := b.Fields[name]
					for i := range data {
						data[i] = math.NaN() // any survivor shows up in %x
					}
				}
			}

			reset()
			if err := sdfg.Interpret(sd, b); err != nil {
				t.Fatal(err)
			}
			want := snapshot()

			reset()
			c, err := sdfg.Compile(sd, b)
			if err != nil {
				t.Fatal(err)
			}
			c.Run()
			if got := snapshot(); got != want {
				t.Error("compiled backend diverges from the interpreter")
			}

			body, n := bindGenerated(pk.Name, g, b, nlev)
			if body == nil {
				t.Fatalf("kernel %s has no generated dispatch — update bindGenerated", pk.Name)
			}
			for _, workers := range []int{1, 4} {
				sched.SetWorkers(workers)
				reset()
				sched.Run(n, body)
				if got := snapshot(); got != want {
					t.Errorf("generated kernel diverges from the interpreter at workers=%d", workers)
				}
			}
		})
	}
}
