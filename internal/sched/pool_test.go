package sched

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestBlockSizeDependsOnlyOnN(t *testing.T) {
	for _, n := range []int{0, 1, 7, 31, 32, 33, 1000, 8192, 8193, 409600} {
		SetWorkers(1)
		b1, nb1 := BlockSize(n), NumBlocks(n)
		SetWorkers(8)
		b8, nb8 := BlockSize(n), NumBlocks(n)
		SetWorkers(0)
		if b1 != b8 || nb1 != nb8 {
			t.Fatalf("n=%d: blocking changed with worker count: (%d,%d) vs (%d,%d)", n, b1, nb1, b8, nb8)
		}
		if n > 0 {
			if b1 < 1 || b1 > maxBlock {
				t.Fatalf("n=%d: block %d out of range", n, b1)
			}
			if (nb1-1)*b1 >= n || nb1*b1 < n {
				t.Fatalf("n=%d: %d blocks of %d do not tile the range", n, nb1, b1)
			}
		}
	}
}

func TestRunCoversRangeOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 5, 100, 4097} {
			counts := make([]int32, n)
			Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestRunIndexedSlotsAreExclusive(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(8)
	n := 10000
	slots := Slots()
	busy := make([]int32, slots)
	var covered atomic.Int64
	RunIndexed(n, func(slot, lo, hi int) {
		if slot < 0 || slot >= slots {
			t.Errorf("slot %d out of [0,%d)", slot, slots)
			return
		}
		if atomic.AddInt32(&busy[slot], 1) != 1 {
			t.Errorf("slot %d used concurrently", slot)
		}
		covered.Add(int64(hi - lo))
		atomic.AddInt32(&busy[slot], -1)
	})
	if covered.Load() != int64(n) {
		t.Fatalf("covered %d of %d indices", covered.Load(), n)
	}
}

// TestReduceSumBitIdentical is the pool's core contract: the sum is
// bit-identical at every worker count, including against a width-1 pool,
// because the block decomposition and fold order depend only on n.
func TestReduceSumBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 17, 1000, 8192, 50000} {
		x := make([]float64, n)
		for i := range x {
			// Wildly varying magnitudes make FP addition order visible.
			x[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		}
		partial := func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		}
		SetWorkers(1)
		ref := ReduceSum(n, partial)
		for _, w := range []int{2, 4, 8} {
			SetWorkers(w)
			for rep := 0; rep < 5; rep++ {
				if got := ReduceSum(n, partial); got != ref {
					t.Fatalf("n=%d workers=%d: sum %x != width-1 sum %x", n, w, got, ref)
				}
			}
		}
	}
}

func TestPanicPropagatesToDispatcher(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The pool must be usable again after a panic.
		var n atomic.Int32
		Run(100, func(lo, hi int) { n.Add(int32(hi - lo)) })
		if n.Load() != 100 {
			t.Fatalf("pool broken after panic: covered %d", n.Load())
		}
	}()
	Run(1000, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("unreachable: panic did not propagate")
}

// TestNestedDispatchRunsInline: a body that dispatches again must not
// deadlock — the inner call finds the pool busy and runs inline, which
// is bit-identical by the blocking contract.
func TestNestedDispatchRunsInline(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	var total atomic.Int64
	Run(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total.Add(int64(ReduceSum(10, func(l, h int) float64 { return float64(h - l) })))
		}
	})
	if total.Load() != 1000 {
		t.Fatalf("nested total = %d, want 1000", total.Load())
	}
}

func TestRunWidthHonorsRequest(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1) // configured width 1; RunWidth overrides per call
	var calls atomic.Int32
	RunWidth(10000, 4, func(lo, hi int) { calls.Add(1) })
	if got := int(calls.Load()); got != NumBlocks(10000) {
		t.Fatalf("RunWidth made %d block calls, want %d", got, NumBlocks(10000))
	}
}

func TestSetWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
	if Slots() < Workers() {
		t.Fatalf("Slots() = %d < Workers() = %d", Slots(), Workers())
	}
}

// BenchmarkDispatch measures the steady-state dispatch cost; the
// zero-alloc contract itself is enforced by TestDispatchZeroAllocs.
func BenchmarkDispatch(b *testing.B) {
	SetWorkers(4)
	defer SetWorkers(0)
	x := make([]float64, 8192)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += 1
		}
	}
	Run(len(x), body) // warm up: spawn workers, size scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(len(x), body)
	}
}

// BenchmarkDispatchReduce is the reduction counterpart: the blocked
// deterministic sum must also be allocation-free in steady state.
func BenchmarkDispatchReduce(b *testing.B) {
	SetWorkers(4)
	defer SetWorkers(0)
	x := make([]float64, 8192)
	for i := range x {
		x[i] = float64(i)
	}
	partial := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}
	sink := ReduceSum(len(x), partial)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += ReduceSum(len(x), partial)
	}
	_ = sink
}

// TestDispatchZeroAllocs enforces the steady-state contract in tier-1,
// independent of the benchgate baseline: once the workers exist, neither
// a Run dispatch nor a blocked reduction may touch the heap.
func TestDispatchZeroAllocs(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	x := make([]float64, 8192)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += 1
		}
	}
	partial := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}
	Run(len(x), body)              // warm up: spawn workers
	_ = ReduceSum(len(x), partial) // size the partials scratch
	if n := testing.AllocsPerRun(100, func() { Run(len(x), body) }); n != 0 {
		t.Fatalf("Run dispatch allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = ReduceSum(len(x), partial) }); n != 0 {
		t.Fatalf("ReduceSum dispatch allocates %.1f times per call, want 0", n)
	}
}
