package sched

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDispatchesCoverBothRanges: two goroutines dispatching at
// the same time — the coupler's GPU-side/CPU-side shape — must each cover
// their own range exactly once. With one lane per side neither dispatch
// degrades the other's correctness, whichever interleaving occurs.
func TestConcurrentDispatchesCoverBothRanges(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	for rep := 0; rep < 50; rep++ {
		const n = 4097
		countsA := make([]int32, n)
		countsB := make([]int32, n)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&countsA[i], 1)
				}
			})
		}()
		go func() {
			defer wg.Done()
			Run(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&countsB[i], 1)
				}
			})
		}()
		wg.Wait()
		for i := 0; i < n; i++ {
			if countsA[i] != 1 || countsB[i] != 1 {
				t.Fatalf("rep %d index %d visited A=%d B=%d times, want 1/1",
					rep, i, countsA[i], countsB[i])
			}
		}
	}
}

// TestConcurrentReduceBitIdentical: reductions racing on both lanes stay
// bit-identical to their width-1 references — lane interleaving moves
// which worker claims which block, never the block decomposition or the
// ascending fold order.
func TestConcurrentReduceBitIdentical(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
		y[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
	}
	px := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}
	py := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += y[i]
		}
		return s
	}
	SetWorkers(1)
	refX, refY := ReduceSum(n, px), ReduceSum(n, py)
	SetWorkers(8)
	for rep := 0; rep < 50; rep++ {
		var gotX, gotY float64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); gotX = ReduceSum(n, px) }()
		go func() { defer wg.Done(); gotY = ReduceSum(n, py) }()
		wg.Wait()
		if gotX != refX || gotY != refY {
			t.Fatalf("rep %d: concurrent sums (%x, %x) != width-1 (%x, %x)",
				rep, gotX, gotY, refX, refY)
		}
	}
}

// TestConcurrentIndexedSlotsExclusive: slot exclusivity must hold across
// lanes, not just within one dispatch — two overlapping RunIndexed calls
// may never hand the same slot id to two live bodies.
func TestConcurrentIndexedSlotsExclusive(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(8)
	slots := Slots()
	for rep := 0; rep < 20; rep++ {
		busy := make([]int32, slots)
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				RunIndexed(10000, func(slot, lo, hi int) {
					if slot < 0 || slot >= slots {
						t.Errorf("slot %d out of [0,%d)", slot, slots)
						return
					}
					if atomic.AddInt32(&busy[slot], 1) != 1 {
						t.Errorf("slot %d used concurrently", slot)
					}
					atomic.AddInt32(&busy[slot], -1)
				})
			}()
		}
		wg.Wait()
	}
}

// TestConcurrentPanicsStayOnTheirLane: a panic raised inside one lane's
// job must re-throw on that lane's dispatcher only; the concurrent
// dispatch on the other lane completes untouched and the pool stays
// usable.
func TestConcurrentPanicsStayOnTheirLane(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	for rep := 0; rep < 20; rep++ {
		var clean atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		var recovered any
		go func() {
			defer wg.Done()
			defer func() { recovered = recover() }()
			Run(1000, func(lo, hi int) {
				if lo == 0 {
					panic("lane fault")
				}
			})
		}()
		go func() {
			defer wg.Done()
			Run(1000, func(lo, hi int) { clean.Add(int32(hi - lo)) })
		}()
		wg.Wait()
		if recovered != "lane fault" {
			t.Fatalf("rep %d: panicking dispatch recovered %v", rep, recovered)
		}
		if clean.Load() != 1000 {
			t.Fatalf("rep %d: clean dispatch covered %d of 1000", rep, clean.Load())
		}
	}
	// The pool must be fully usable afterwards.
	var n atomic.Int32
	Run(100, func(lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 100 {
		t.Fatalf("pool broken after lane panics: covered %d", n.Load())
	}
}
