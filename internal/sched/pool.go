// Package sched is the process-wide kernel execution layer: a persistent
// worker pool with NPROMA-style cache blocking and bit-reproducible
// parallel reductions.
//
// The design follows the CPU throughput recipe of ICON (Hoefler et al.):
// every index range — cells, edges, vertices, columns, levels — is split
// into fixed-size blocks whose length depends only on the range length,
// never on the worker count. Workers claim blocks from a shared atomic
// cursor (dynamic scheduling absorbs load imbalance such as variable wet
// ocean depth), and reductions store one partial sum per block that the
// dispatcher folds in ascending block order. Because the block
// decomposition and the fold order are worker-count-independent,
// workers=N produces bit-identical results to workers=1 — the property
// the coupled model's conservation accounting and the ocean CG (whose
// dot products feed a global iteration) rely on.
//
// One set of workers serves the whole process. Workers park on a
// per-worker wake channel between dispatches, so steady-state dispatch
// performs zero goroutine spawns and zero heap allocations: the job is
// published through pre-existing struct fields, the workers are woken by
// buffered channel sends, and completion is a sync.WaitGroup wait. The
// dispatcher itself participates as slot 0.
//
// Dispatches are serialized by a mutex; a dispatch that finds the pool
// busy (the coupler runs its GPU-side and CPU-side kernel streams as
// concurrent goroutines) or nested inside another dispatch runs inline
// on the caller — legal because inline execution follows the identical
// block structure and is therefore bit-identical.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// NPROMA blocking constants. A range is split into up to targetBlocks
// blocks so there is always enough slack for dynamic load balancing, but
// a block never exceeds maxBlock elements, keeping the per-block working
// set of elementwise kernels inside the L1/L2 cache like ICON's nproma
// inner dimension. Both are fixed constants: the decomposition of a
// range depends only on its length.
const (
	targetBlocks = 32
	maxBlock     = 256
)

// BlockSize returns the block length used for an index range of n
// elements. It is a pure function of n — never of the worker count —
// which is what makes blocked reductions reproducible at any width.
func BlockSize(n int) int {
	if n <= 0 {
		return 1
	}
	b := (n + targetBlocks - 1) / targetBlocks
	if b > maxBlock {
		b = maxBlock
	}
	return b
}

// NumBlocks returns the number of blocks the range [0,n) splits into.
func NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	b := BlockSize(n)
	return (n + b - 1) / b
}

type jobKind int32

const (
	jobRun jobKind = iota
	jobIndexed
	jobReduce
)

// Pool is a persistent worker pool. The zero value is ready to use; the
// package-level functions operate on one shared default pool, which is
// what the model packages use.
type Pool struct {
	// workers is the configured parallel width (0 = GOMAXPROCS at use).
	workers atomic.Int32
	// slots is 1 + the number of background workers ever spawned; see
	// Slots.
	slots atomic.Int32

	// mu serializes dispatches. TryLock failures run inline.
	mu sync.Mutex

	// wake[i] wakes the parked background worker with slot id i+1.
	wake []chan struct{}

	// Job state, owned by the dispatcher holding mu. Published to the
	// workers via the happens-before edge of the wake sends and read
	// back after wg.Wait.
	kind     jobKind
	n        int
	block    int
	nblocks  int32
	cursor   atomic.Int32
	run      func(lo, hi int)
	indexed  func(slot, lo, hi int)
	partial  func(lo, hi int) float64
	partials []float64
	wg       sync.WaitGroup

	pmu      sync.Mutex
	panicked any
	panicSet bool
}

var def Pool

// SetWorkers sets the target parallel width of the default pool; n <= 0
// resets it to runtime.GOMAXPROCS(0). Results do not depend on the
// width, only wall-clock does.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	def.workers.Store(int32(n))
	if s := int32(n); def.slots.Load() < s {
		def.slots.Store(s)
	}
}

// Workers returns the current target parallel width.
func Workers() int {
	if w := def.workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// Slots returns an upper bound on the slot ids RunIndexed may pass to
// its body: callers size per-slot scratch as Slots()*stride. The bound
// is stable while the worker configuration is unchanged.
func Slots() int {
	s := int(def.slots.Load())
	if w := Workers(); w > s {
		return w
	}
	if s < 1 {
		return 1
	}
	return s
}

// Run executes body over [0,n) in parallel: body(lo,hi) is called for
// disjoint index ranges covering [0,n) exactly once. body must write
// only to indices in [lo,hi) (or per-element state), so results are
// independent of the partition. Run does not allocate in steady state.
func Run(n int, body func(lo, hi int)) { def.Run(n, body) }

// RunIndexed is Run with a worker-slot id passed to the body for
// selecting per-worker scratch; slot is in [0, Slots()) and no two
// concurrent body calls share a slot.
func RunIndexed(n int, body func(slot, lo, hi int)) { def.RunIndexed(n, body) }

// RunWidth is Run with an explicit width cap for this call, independent
// of the configured worker count (used by exec.ParallelFor, whose API
// carries its own worker argument).
func RunWidth(n, width int, body func(lo, hi int)) { def.runWidth(width, n, body) }

// ReduceSum computes the sum of partial(lo,hi) over the block
// decomposition of [0,n), folding the per-block partials in ascending
// block order. The result is bit-identical at every worker count,
// including the inline width-1 path, because the blocks and the fold
// order depend only on n.
func ReduceSum(n int, partial func(lo, hi int) float64) float64 { return def.ReduceSum(n, partial) }

// width resolves the parallel width for a range of n elements.
func (p *Pool) width(n int) int {
	w := int(p.workers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if nb := NumBlocks(n); w > nb {
		w = nb
	}
	return w
}

// Run executes body over [0,n); see the package-level Run.
func (p *Pool) Run(n int, body func(lo, hi int)) {
	p.runWidth(p.width(n), n, body)
}

func (p *Pool) runWidth(width, n int, body func(lo, hi int)) {
	if nb := NumBlocks(n); width > nb {
		width = nb
	}
	if width <= 1 || !p.mu.TryLock() {
		if n > 0 {
			body(0, n)
		}
		return
	}
	defer p.mu.Unlock()
	p.run = body
	p.dispatch(width, n, jobRun)
	p.run = nil
	p.rethrow()
}

// RunIndexed executes body with worker-slot ids; see the package-level
// RunIndexed.
func (p *Pool) RunIndexed(n int, body func(slot, lo, hi int)) {
	width := p.width(n)
	if width <= 1 || !p.mu.TryLock() {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	defer p.mu.Unlock()
	p.indexed = body
	p.dispatch(width, n, jobIndexed)
	p.indexed = nil
	p.rethrow()
}

// ReduceSum computes a deterministic blocked sum; see the package-level
// ReduceSum.
func (p *Pool) ReduceSum(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	block := BlockSize(n)
	nb := (n + block - 1) / block
	width := p.width(n)
	if width <= 1 || nb <= 1 || !p.mu.TryLock() {
		var sum float64
		for b := 0; b < nb; b++ {
			lo := b * block
			hi := lo + block
			if hi > n {
				hi = n
			}
			sum += partial(lo, hi)
		}
		return sum
	}
	defer p.mu.Unlock()
	if cap(p.partials) < nb {
		p.partials = make([]float64, nb)
	}
	p.partials = p.partials[:nb]
	p.partial = partial
	p.dispatch(width, n, jobReduce)
	p.partial = nil
	p.rethrow()
	var sum float64
	for _, v := range p.partials {
		sum += v
	}
	return sum
}

// dispatch publishes the job, wakes width-1 parked workers, works as
// slot 0, and waits for completion. Caller holds p.mu and has stored
// the job function.
func (p *Pool) dispatch(width, n int, kind jobKind) {
	p.ensure(width - 1)
	p.kind = kind
	p.n = n
	p.block = BlockSize(n)
	p.nblocks = int32(NumBlocks(n))
	p.cursor.Store(0)
	p.wg.Add(width - 1)
	for i := 0; i < width-1; i++ {
		p.wake[i] <- struct{}{}
	}
	p.work(0)
	p.wg.Wait()
}

// ensure spawns background workers until k are available. Workers are
// never torn down; they park on their wake channel between jobs.
func (p *Pool) ensure(k int) {
	for len(p.wake) < k {
		slot := len(p.wake) + 1
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.worker(slot, ch)
	}
	if s := int32(len(p.wake) + 1); p.slots.Load() < s {
		p.slots.Store(s)
	}
}

func (p *Pool) worker(slot int, wake chan struct{}) {
	for range wake {
		p.work(slot)
		p.wg.Done()
	}
}

// work claims blocks until the cursor runs out. A panic in the body is
// captured (first wins) and re-thrown on the dispatcher goroutine, so
// the coupler's supervisor sees worker crashes exactly like serial
// ones.
func (p *Pool) work(slot int) {
	defer p.capture()
	for {
		b := p.cursor.Add(1) - 1
		if b >= p.nblocks {
			return
		}
		lo := int(b) * p.block
		hi := lo + p.block
		if hi > p.n {
			hi = p.n
		}
		switch p.kind {
		case jobRun:
			p.run(lo, hi)
		case jobIndexed:
			p.indexed(slot, lo, hi)
		default:
			p.partials[b] = p.partial(lo, hi)
		}
	}
}

// capture records the first panic of a job.
func (p *Pool) capture() {
	r := recover()
	if r == nil {
		return
	}
	p.pmu.Lock()
	if !p.panicSet {
		p.panicked, p.panicSet = r, true
	}
	p.pmu.Unlock()
}

// rethrow re-panics on the dispatcher after all workers finished.
func (p *Pool) rethrow() {
	if !p.panicSet {
		return
	}
	r := p.panicked
	p.panicked, p.panicSet = nil, false
	panic(r)
}
