// Package sched is the process-wide kernel execution layer: a persistent
// worker pool with NPROMA-style cache blocking and bit-reproducible
// parallel reductions.
//
// The design follows the CPU throughput recipe of ICON (Hoefler et al.):
// every index range — cells, edges, vertices, columns, levels — is split
// into fixed-size blocks whose length depends only on the range length,
// never on the worker count. Workers claim blocks from a shared atomic
// cursor (dynamic scheduling absorbs load imbalance such as variable wet
// ocean depth), and reductions store one partial sum per block that the
// dispatcher folds in ascending block order. Because the block
// decomposition and the fold order are worker-count-independent,
// workers=N produces bit-identical results to workers=1 — the property
// the coupled model's conservation accounting and the ocean CG (whose
// dot products feed a global iteration) rely on.
//
// One set of workers serves the whole process, shared between numLanes
// independent dispatch lanes: the coupler runs its GPU-side and CPU-side
// kernel streams as concurrent goroutines, and with one lane per side
// both streams dispatch in parallel instead of one falling back to
// inline width-1 execution whenever the other holds the pool. Each lane
// carries its own job descriptor and block cursor; idle workers scan the
// lanes and join any open job, so the pool's capacity drains to
// whichever side has blocks left. Because every job's block structure
// and fold order depend only on its own n, lane interleaving cannot
// change results.
//
// Workers park on a per-worker wake channel between dispatches, so
// steady-state dispatch performs zero goroutine spawns and zero heap
// allocations: the job is published through pre-existing lane fields,
// the workers are woken by buffered channel sends, and completion is a
// participant-count handshake. The dispatcher itself participates, using
// its lane's reserved slot id.
//
// A dispatch that finds every lane busy, or that is nested inside a body
// already running on the caller's lane, runs inline on the caller —
// legal because inline execution follows the identical block structure
// and is therefore bit-identical. (A nested dispatch may also land on a
// free lane and run parallel; both outcomes produce the same bits.)
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// NPROMA blocking constants. A range is split into up to targetBlocks
// blocks so there is always enough slack for dynamic load balancing, but
// a block never exceeds maxBlock elements, keeping the per-block working
// set of elementwise kernels inside the L1/L2 cache like ICON's nproma
// inner dimension. Both are fixed constants: the decomposition of a
// range depends only on its length.
const (
	targetBlocks = 32
	maxBlock     = 256
)

// numLanes is the number of dispatches that can be in flight at once.
// Two matches the coupler's concurrency shape: one kernel stream per
// model side (atmosphere+land vs ocean+ice+BGC).
const numLanes = 2

// BlockSize returns the block length used for an index range of n
// elements. It is a pure function of n — never of the worker count —
// which is what makes blocked reductions reproducible at any width.
func BlockSize(n int) int {
	if n <= 0 {
		return 1
	}
	b := (n + targetBlocks - 1) / targetBlocks
	if b > maxBlock {
		b = maxBlock
	}
	return b
}

// NumBlocks returns the number of blocks the range [0,n) splits into.
func NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	b := BlockSize(n)
	return (n + b - 1) / b
}

type jobKind int32

const (
	jobRun jobKind = iota
	jobIndexed
	jobReduce
)

// lane is one independent dispatch: a job descriptor plus the join
// protocol that lets shared workers enter and leave while the job is
// open. The dispatcher owns the lane through mu for the whole dispatch.
type lane struct {
	// mu serializes dispatches on this lane. TryLock failures move to
	// the next lane, then fall back to inline execution.
	mu sync.Mutex

	// Job state, owned by the dispatcher holding mu. Published to the
	// workers via the release edge of active.Store(true) (and the wake
	// sends); read back after the participant handshake completes.
	kind     jobKind
	n        int
	block    int
	nblocks  int32
	cursor   atomic.Int32
	run      func(lo, hi int)
	indexed  func(slot, lo, hi int)
	partial  func(lo, hi int) float64
	partials []float64

	// active is true while the job is open for joining. participants
	// counts the dispatcher plus every joined worker; whoever decrements
	// it to zero after the dispatcher closed the job signals done
	// (buffered 1, lazily created, exactly one send per dispatch that
	// still had joiners at close).
	active       atomic.Bool
	participants atomic.Int32
	done         chan struct{}

	pmu      sync.Mutex
	panicked any
	panicSet bool
}

// Pool is a persistent worker pool. The zero value is ready to use; the
// package-level functions operate on one shared default pool, which is
// what the model packages use.
type Pool struct {
	// workers is the configured parallel width (0 = GOMAXPROCS at use).
	workers atomic.Int32
	// slots is a high-water mark of slot ids handed out; see Slots.
	slots atomic.Int32

	lanes [numLanes]lane

	// seq counts job publications. A parking worker compares it across
	// its final empty scan to close the race where a dispatch publishes
	// (and wakes the then-current idle set) in the instant before the
	// worker registers itself idle.
	seq atomic.Uint64

	// idleMu guards idle and wake. idle holds the worker ids currently
	// parked (no wake token outstanding); wake[i] is worker i's buffered
	// wake channel.
	idleMu sync.Mutex
	idle   []int
	wake   []chan struct{}
}

var def Pool

// SetWorkers sets the target parallel width of the default pool; n <= 0
// resets it to runtime.GOMAXPROCS(0). Results do not depend on the
// width, only wall-clock does.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	def.workers.Store(int32(n))
	if s := int32(numLanes - 1 + n); def.slots.Load() < s {
		def.slots.Store(s)
	}
}

// Workers returns the current target parallel width.
func Workers() int {
	if w := def.workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// Slots returns an upper bound on the slot ids RunIndexed may pass to
// its body: callers size per-slot scratch as Slots()*stride. The bound
// is stable while the worker configuration is unchanged. Each lane
// reserves one dispatcher slot (ids 0..numLanes-1) and background
// worker w uses id numLanes+w, so the bound is numLanes-1 larger than
// the configured width.
func Slots() int {
	s := int(def.slots.Load())
	if w := numLanes - 1 + Workers(); w > s {
		s = w
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Run executes body over [0,n) in parallel: body(lo,hi) is called for
// disjoint index ranges covering [0,n) exactly once. body must write
// only to indices in [lo,hi) (or per-element state), so results are
// independent of the partition. Run does not allocate in steady state.
func Run(n int, body func(lo, hi int)) { def.Run(n, body) }

// RunIndexed is Run with a worker-slot id passed to the body for
// selecting per-worker scratch; slot is in [0, Slots()) and no two
// concurrent body calls share a slot.
func RunIndexed(n int, body func(slot, lo, hi int)) { def.RunIndexed(n, body) }

// RunWidth is Run with an explicit width cap for this call, independent
// of the configured worker count (used by exec.ParallelFor, whose API
// carries its own worker argument).
func RunWidth(n, width int, body func(lo, hi int)) { def.runWidth(width, n, body) }

// ReduceSum computes the sum of partial(lo,hi) over the block
// decomposition of [0,n), folding the per-block partials in ascending
// block order. The result is bit-identical at every worker count,
// including the inline width-1 path, because the blocks and the fold
// order depend only on n.
func ReduceSum(n int, partial func(lo, hi int) float64) float64 { return def.ReduceSum(n, partial) }

// width resolves the parallel width for a range of n elements.
func (p *Pool) width(n int) int {
	w := int(p.workers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if nb := NumBlocks(n); w > nb {
		w = nb
	}
	return w
}

// acquire claims a free dispatch lane, returning it with its reserved
// dispatcher slot id; nil means every lane is busy (or the caller is
// nested inside its own dispatch) and the job must run inline.
func (p *Pool) acquire() (*lane, int) {
	for i := range p.lanes {
		if p.lanes[i].mu.TryLock() {
			return &p.lanes[i], i
		}
	}
	return nil, 0
}

// Run executes body over [0,n); see the package-level Run.
func (p *Pool) Run(n int, body func(lo, hi int)) {
	p.runWidth(p.width(n), n, body)
}

func (p *Pool) runWidth(width, n int, body func(lo, hi int)) {
	if nb := NumBlocks(n); width > nb {
		width = nb
	}
	var l *lane
	var laneSlot int
	if width > 1 {
		l, laneSlot = p.acquire()
	}
	if l == nil {
		if n > 0 {
			body(0, n)
		}
		return
	}
	l.run = body
	p.dispatch(l, laneSlot, width, n, jobRun)
	l.run = nil
	r, panicked := l.takePanic()
	l.mu.Unlock()
	if panicked {
		panic(r)
	}
}

// RunIndexed executes body with worker-slot ids; see the package-level
// RunIndexed.
func (p *Pool) RunIndexed(n int, body func(slot, lo, hi int)) {
	width := p.width(n)
	var l *lane
	var laneSlot int
	if width > 1 {
		l, laneSlot = p.acquire()
	}
	if l == nil {
		if n > 0 {
			body(0, 0, n)
		}
		return
	}
	l.indexed = body
	p.dispatch(l, laneSlot, width, n, jobIndexed)
	l.indexed = nil
	r, panicked := l.takePanic()
	l.mu.Unlock()
	if panicked {
		panic(r)
	}
}

// ReduceSum computes a deterministic blocked sum; see the package-level
// ReduceSum.
func (p *Pool) ReduceSum(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	block := BlockSize(n)
	nb := (n + block - 1) / block
	width := p.width(n)
	var l *lane
	var laneSlot int
	if width > 1 && nb > 1 {
		l, laneSlot = p.acquire()
	}
	if l == nil {
		var sum float64
		for b := 0; b < nb; b++ {
			lo := b * block
			hi := lo + block
			if hi > n {
				hi = n
			}
			sum += partial(lo, hi)
		}
		return sum
	}
	if cap(l.partials) < nb {
		l.partials = make([]float64, nb)
	}
	l.partials = l.partials[:nb]
	l.partial = partial
	p.dispatch(l, laneSlot, width, n, jobReduce)
	l.partial = nil
	var sum float64
	for _, v := range l.partials {
		sum += v
	}
	r, panicked := l.takePanic()
	l.mu.Unlock()
	if panicked {
		panic(r)
	}
	return sum
}

// dispatch publishes the job on the lane, wakes up to width-1 parked
// workers, works with the lane's dispatcher slot, then closes the job
// and waits for any still-joined workers to drain. Caller holds l.mu
// and has stored the job function.
func (p *Pool) dispatch(l *lane, laneSlot, width, n int, kind jobKind) {
	p.ensure(width - 1)
	if l.done == nil {
		l.done = make(chan struct{}, 1)
	}
	l.kind = kind
	l.n = n
	l.block = BlockSize(n)
	l.nblocks = int32(NumBlocks(n))
	l.cursor.Store(0)
	l.participants.Store(1)
	l.active.Store(true)
	p.seq.Add(1)
	p.wakeIdle(width - 1)
	l.work(laneSlot)
	l.active.Store(false)
	if l.participants.Add(-1) > 0 {
		<-l.done
	}
}

// ensure spawns background workers until k are available. Workers are
// never torn down; they park on their wake channel between jobs.
func (p *Pool) ensure(k int) {
	p.idleMu.Lock()
	for len(p.wake) < k {
		idx := len(p.wake)
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.worker(idx, ch)
	}
	if s := int32(numLanes + len(p.wake)); p.slots.Load() < s {
		p.slots.Store(s)
	}
	p.idleMu.Unlock()
}

// wakeIdle pops up to k parked workers and sends each its wake token.
// The channels are buffered and a worker is on the idle list only when
// no token is outstanding, so the sends never block.
func (p *Pool) wakeIdle(k int) {
	if k <= 0 {
		return
	}
	p.idleMu.Lock()
	for k > 0 && len(p.idle) > 0 {
		idx := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		p.wake[idx] <- struct{}{}
		k--
	}
	p.idleMu.Unlock()
}

// unregister removes a worker from the idle list, reporting whether it
// was still there. False means a wakeIdle popped it concurrently and a
// token is in flight on its channel.
func (p *Pool) unregister(idx int) bool {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for i, v := range p.idle {
		if v == idx {
			p.idle[i] = p.idle[len(p.idle)-1]
			p.idle = p.idle[:len(p.idle)-1]
			return true
		}
	}
	return false
}

// worker is the background worker loop: scan the lanes for open jobs,
// and park when a full scan finds no blocks to claim. The seq check
// closes the publish-vs-park race — a dispatch that published after the
// pre-scan snapshot could have missed this worker on the idle list, so
// the worker re-scans instead of parking.
func (p *Pool) worker(idx int, wake chan struct{}) {
	slot := numLanes + idx
	for {
		s := p.seq.Load()
		if p.scan(slot) {
			continue
		}
		p.idleMu.Lock()
		p.idle = append(p.idle, idx)
		p.idleMu.Unlock()
		if p.seq.Load() != s && p.unregister(idx) {
			continue
		}
		<-wake
	}
}

// scan visits every lane once, joining any open job and claiming its
// remaining blocks. Reports whether at least one block was executed.
func (p *Pool) scan(slot int) bool {
	worked := false
	for i := range p.lanes {
		l := &p.lanes[i]
		if !l.join() {
			continue
		}
		if l.work(slot) {
			worked = true
		}
		l.leave()
	}
	return worked
}

// join enters an open job: the participant count is raised only while
// it is nonzero (the dispatcher still holds its own count) and the job
// is active, so a joiner can never attach to a closed or drained job.
// The re-check after the CAS undoes a join that raced the close.
func (l *lane) join() bool {
	for {
		c := l.participants.Load()
		if c == 0 || !l.active.Load() {
			return false
		}
		if l.participants.CompareAndSwap(c, c+1) {
			if l.active.Load() {
				return true
			}
			l.leave()
			return false
		}
	}
}

// leave drops a participant; whoever reaches zero after the dispatcher
// closed the job signals the drain.
func (l *lane) leave() {
	if l.participants.Add(-1) == 0 {
		l.done <- struct{}{}
	}
}

// work claims blocks until the cursor runs out, reporting whether any
// block was claimed. A panic in the body is captured (first wins) and
// re-thrown on the dispatcher goroutine, so the coupler's supervisor
// sees worker crashes exactly like serial ones.
func (l *lane) work(slot int) (claimed bool) {
	defer l.capture()
	for {
		b := l.cursor.Add(1) - 1
		if b >= l.nblocks {
			return claimed
		}
		claimed = true
		lo := int(b) * l.block
		hi := lo + l.block
		if hi > l.n {
			hi = l.n
		}
		switch l.kind {
		case jobRun:
			l.run(lo, hi)
		case jobIndexed:
			l.indexed(slot, lo, hi)
		default:
			l.partials[b] = l.partial(lo, hi)
		}
	}
}

// capture records the first panic of a job.
func (l *lane) capture() {
	r := recover()
	if r == nil {
		return
	}
	l.pmu.Lock()
	if !l.panicSet {
		l.panicked, l.panicSet = r, true
	}
	l.pmu.Unlock()
}

// takePanic returns and clears the job's captured panic, if any; the
// dispatcher re-panics after releasing the lane.
func (l *lane) takePanic() (any, bool) {
	l.pmu.Lock()
	r, set := l.panicked, l.panicSet
	l.panicked, l.panicSet = nil, false
	l.pmu.Unlock()
	return r, set
}
