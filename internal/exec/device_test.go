package exec

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testSpec() DeviceSpec {
	return DeviceSpec{
		Name:               "test-gpu",
		MemBW:              1e12,
		PeakFlops:          10e12,
		LaunchLatency:      5e-6,
		HalfSatBytes:       1e6,
		GraphReplayLatency: 10e-6,
		PowerIdle:          50,
		PowerMax:           500,
	}
}

func TestEffBandwidthSaturation(t *testing.T) {
	s := testSpec()
	if got := s.EffBandwidth(s.HalfSatBytes); math.Abs(got-s.MemBW/2) > 1e-3*s.MemBW {
		t.Errorf("half-sat bandwidth = %v, want %v", got, s.MemBW/2)
	}
	if got := s.EffBandwidth(1e12); got < 0.99*s.MemBW {
		t.Errorf("large-kernel bandwidth = %v, want ≈peak", got)
	}
	if got := s.EffBandwidth(0); got != s.MemBW {
		t.Errorf("zero-byte bandwidth = %v", got)
	}
}

func TestEffBandwidthMonotone(t *testing.T) {
	s := testSpec()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return s.EffBandwidth(a) <= s.EffBandwidth(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	s := testSpec()
	// Memory-bound: 1 GB, negligible flops.
	tm := s.KernelTime(1e9, 1e6)
	if want := 1e9 / s.EffBandwidth(1e9); math.Abs(tm-want) > 1e-12 {
		t.Errorf("mem-bound time = %v want %v", tm, want)
	}
	// Compute-bound: tiny bytes, huge flops.
	tc := s.KernelTime(8, 1e12)
	if want := 1e12 / s.PeakFlops; math.Abs(tc-want) > 1e-9 {
		t.Errorf("flop-bound time = %v want %v", tc, want)
	}
}

func TestLaunchExecutesAndAccounts(t *testing.T) {
	d := NewDevice(testSpec())
	var ran int32
	d.Launch(Kernel{Name: "k", Bytes: 1e6, Run: func() { atomic.AddInt32(&ran, 1) }})
	if ran != 1 {
		t.Error("kernel body did not run")
	}
	if d.Launches() != 1 {
		t.Errorf("launches = %d", d.Launches())
	}
	want := d.Spec.LaunchLatency + d.Spec.KernelTime(1e6, 0)
	if math.Abs(d.SimTime()-want) > 1e-15 {
		t.Errorf("simTime = %v want %v", d.SimTime(), want)
	}
	if d.Energy() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestSmallKernelsLaunchDominated(t *testing.T) {
	d := NewDevice(testSpec())
	// 1000 tiny kernels: launch latency should dominate.
	for i := 0; i < 1000; i++ {
		d.Launch(Kernel{Name: "tiny", Bytes: 1000})
	}
	launchPart := 1000 * d.Spec.LaunchLatency
	if d.SimTime() < launchPart || d.SimTime() > 1.5*launchPart {
		t.Errorf("simTime = %v, launch part = %v: tiny kernels should be launch-dominated",
			d.SimTime(), launchPart)
	}
}

func TestGraphReplaySpeedup(t *testing.T) {
	// The land-model scenario: hundreds of tiny kernels. Graph replay must
	// be roughly an order of magnitude faster (paper: 8–10×).
	spec := testSpec()
	eager := NewDevice(spec)
	const nk = 300
	mk := func(i int) Kernel {
		// Independent kernels (different fields) of 100 KB each.
		name := string(rune('a'+i%26)) + string(rune('0'+i/26%10))
		return Kernel{Name: "pft", Bytes: 1e5, Reads: []string{"in" + name}, Writes: []string{"out" + name}}
	}
	for i := 0; i < nk; i++ {
		eager.Launch(mk(i))
	}
	graphDev := NewDevice(spec)
	graphDev.BeginCapture()
	for i := 0; i < nk; i++ {
		graphDev.Launch(mk(i))
	}
	g, err := graphDev.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	g.Replay()
	speedup := eager.SimTime() / graphDev.SimTime()
	if speedup < 4 {
		t.Errorf("graph speedup = %.1f, want >4 for tiny independent kernels", speedup)
	}
}

func TestGraphPreservesProgramOrderResults(t *testing.T) {
	// Replay must produce bit-identical results to eager execution.
	spec := testSpec()
	run := func(useGraph bool) []float64 {
		x := []float64{1, 0, 0}
		d := NewDevice(spec)
		ks := []Kernel{
			{Name: "a", Bytes: 8, Writes: []string{"x1"}, Reads: []string{"x0"},
				Run: func() { x[1] = x[0] * 3 }},
			{Name: "b", Bytes: 8, Writes: []string{"x2"}, Reads: []string{"x1"},
				Run: func() { x[2] = x[1] + 1 }},
			{Name: "c", Bytes: 8, Writes: []string{"x0"}, Reads: []string{"x2"},
				Run: func() { x[0] = x[2] * x[2] }},
		}
		if useGraph {
			d.BeginCapture()
			for _, k := range ks {
				d.Launch(k)
			}
			g, _ := d.EndCapture()
			g.Replay()
			g.Replay()
		} else {
			for rep := 0; rep < 2; rep++ {
				for _, k := range ks {
					d.Launch(k)
				}
			}
		}
		return x
	}
	e := run(false)
	g := run(true)
	for i := range e {
		if e[i] != g[i] {
			t.Errorf("index %d: eager %v graph %v", i, e[i], g[i])
		}
	}
}

func TestGraphDependencyLevels(t *testing.T) {
	d := NewDevice(testSpec())
	d.BeginCapture()
	// Chain: a->b->c must serialize (3 levels); d is independent (level 0).
	d.Launch(Kernel{Name: "a", Writes: []string{"f1"}})
	d.Launch(Kernel{Name: "b", Reads: []string{"f1"}, Writes: []string{"f2"}})
	d.Launch(Kernel{Name: "c", Reads: []string{"f2"}, Writes: []string{"f3"}})
	d.Launch(Kernel{Name: "d", Writes: []string{"g"}})
	g, err := d.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() != 3 {
		t.Errorf("levels = %d, want 3", g.NumLevels())
	}
	if g.NumKernels() != 4 {
		t.Errorf("kernels = %d", g.NumKernels())
	}
}

func TestGraphWARAndWAWHazards(t *testing.T) {
	d := NewDevice(testSpec())
	d.BeginCapture()
	d.Launch(Kernel{Name: "r", Reads: []string{"f"}})   // level 0
	d.Launch(Kernel{Name: "w", Writes: []string{"f"}})  // WAR: level 1
	d.Launch(Kernel{Name: "w2", Writes: []string{"f"}}) // WAW: level 2
	g, _ := d.EndCapture()
	if g.NumLevels() != 3 {
		t.Errorf("WAR/WAW levels = %d, want 3", g.NumLevels())
	}
}

func TestNestedCapturePanics(t *testing.T) {
	d := NewDevice(testSpec())
	d.BeginCapture()
	defer func() {
		if recover() == nil {
			t.Error("nested capture should panic")
		}
	}()
	d.BeginCapture()
}

func TestEndCaptureWithoutBegin(t *testing.T) {
	d := NewDevice(testSpec())
	if _, err := d.EndCapture(); err == nil {
		t.Error("want error")
	}
}

func TestPowerCapThrottles(t *testing.T) {
	spec := testSpec()
	free := NewDevice(spec)
	capped := NewDevice(spec)
	capped.SetPowerCap(250) // kernel wants PowerMax=500
	k := Kernel{Name: "big", Bytes: 1e9}
	free.Launch(k)
	capped.Launch(k)
	if capped.SimTime() <= free.SimTime() {
		t.Errorf("capped %v should be slower than free %v", capped.SimTime(), free.SimTime())
	}
	ratio := capped.SimTime() / free.SimTime()
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("throttle ratio = %v, want ≈2 for half power", ratio)
	}
}

func TestPowerCapAboveNeedNoEffect(t *testing.T) {
	spec := testSpec()
	free := NewDevice(spec)
	capped := NewDevice(spec)
	capped.SetPowerCap(spec.PowerMax + 100)
	k := Kernel{Name: "big", Bytes: 1e9}
	free.Launch(k)
	capped.Launch(k)
	if capped.SimTime() != free.SimTime() {
		t.Errorf("generous cap changed timing: %v vs %v", capped.SimTime(), free.SimTime())
	}
}

func TestAdvanceIdle(t *testing.T) {
	d := NewDevice(testSpec())
	d.AdvanceIdle(2)
	if d.SimTime() != 2 {
		t.Errorf("simTime = %v", d.SimTime())
	}
	if want := 2 * d.Spec.PowerIdle; math.Abs(d.Energy()-want) > 1e-12 {
		t.Errorf("idle energy = %v want %v", d.Energy(), want)
	}
	d.AdvanceIdle(-1) // no-op
	if d.SimTime() != 2 {
		t.Errorf("negative idle advanced clock")
	}
}

func TestStatsAndReset(t *testing.T) {
	d := NewDevice(testSpec())
	d.Launch(Kernel{Name: "a", Bytes: 100})
	d.Launch(Kernel{Name: "a", Bytes: 100})
	d.Launch(Kernel{Name: "b", Bytes: 50})
	st := d.Stats()
	if len(st) != 2 || st[0].Name != "a" || st[0].Count != 2 || st[1].Name != "b" {
		t.Errorf("stats = %+v", st)
	}
	if d.BytesMoved() != 250 {
		t.Errorf("bytes = %v", d.BytesMoved())
	}
	d.Reset()
	if d.SimTime() != 0 || d.Launches() != 0 || len(d.Stats()) != 0 {
		t.Error("reset incomplete")
	}
}

func TestSustainedBandwidth(t *testing.T) {
	d := NewDevice(testSpec())
	// One huge kernel: sustained BW should approach peak (launch latency
	// amortised, saturation curve near 1).
	d.Launch(Kernel{Name: "huge", Bytes: 1e11})
	bw := d.SustainedBandwidth()
	if bw < 0.95*d.Spec.MemBW {
		t.Errorf("sustained = %v, want ≈%v", bw, d.Spec.MemBW)
	}
	// Many tiny kernels: sustained BW collapses.
	d2 := NewDevice(testSpec())
	for i := 0; i < 100; i++ {
		d2.Launch(Kernel{Name: "tiny", Bytes: 1e3})
	}
	if d2.SustainedBandwidth() > 0.01*d2.Spec.MemBW {
		t.Errorf("tiny-kernel sustained = %v, should collapse", d2.SustainedBandwidth())
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var sum int64
		ParallelFor(1000, workers, func(i int) {
			atomic.AddInt64(&sum, int64(i))
		})
		if sum != 999*1000/2 {
			t.Errorf("workers=%d: sum = %d", workers, sum)
		}
	}
	// n=0 edge case.
	ParallelFor(0, 4, func(i int) { t.Error("body called for n=0") })
}

func TestGraphEmptyReplay(t *testing.T) {
	d := NewDevice(testSpec())
	d.BeginCapture()
	g, err := d.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	g.Replay() // must not panic
	if d.SimTime() != d.Spec.GraphReplayLatency {
		t.Errorf("empty replay time = %v", d.SimTime())
	}
}
