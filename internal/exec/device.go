// Package exec provides the kernel execution runtime that stands in for the
// GPU/CPU execution environment of the paper. Kernels are real Go closures
// that perform the model's numerics; in addition to running them, the
// runtime charges a simulated clock using a roofline cost model (memory
// traffic / sustained bandwidth, flops / peak, per-launch latency) and an
// energy model, so that a laptop-scale run yields the timing signals — launch
// overhead, bandwidth saturation, graph-replay speedups, power draw — that
// drive the paper's performance analysis.
//
// The central substitution (see DESIGN.md): the paper's Hopper GPU and Grace
// CPU become Device values with the published bandwidth/latency/power
// parameters; OpenACC kernel launches become Launch calls; CUDA Graphs
// become Graph capture/replay. The observable behaviour matches what the
// paper reports: many tiny kernels are launch-latency dominated until
// captured into a graph, large stencil kernels are bandwidth bound, and the
// superchip's shared power budget rarely throttles memory-bound work.
package exec

import (
	"fmt"
	"sort"
	"sync"

	"icoearth/internal/sched"
	"icoearth/internal/trace"
)

// DeviceSpec holds the hardware parameters of one execution device. All
// bandwidths are bytes/second, times in seconds, powers in watts.
type DeviceSpec struct {
	Name string

	// MemBW is the peak sustained DRAM bandwidth.
	MemBW float64
	// PeakFlops is the double-precision peak.
	PeakFlops float64
	// LaunchLatency is charged per kernel launch (the CUDA launch
	// overhead); zero for host CPUs.
	LaunchLatency float64
	// HalfSatBytes is the per-kernel byte volume at which the effective
	// bandwidth reaches half of MemBW; models GPU underutilisation for
	// small working sets (too few cells per GPU — the paper's strong
	// scaling limit at ~10 800 cells/GPU).
	HalfSatBytes float64
	// GraphReplayLatency is charged once per graph replay.
	GraphReplayLatency float64

	// Power model: draw = PowerIdle + util·(PowerMax−PowerIdle), where util
	// is the achieved fraction of peak bandwidth.
	PowerIdle float64
	PowerMax  float64

	// Cores is informational (CPU devices).
	Cores int
}

// EffBandwidth returns the achieved bandwidth for a kernel moving the given
// number of bytes: a latency–throughput saturation curve.
func (s DeviceSpec) EffBandwidth(bytes float64) float64 {
	if bytes <= 0 {
		return s.MemBW
	}
	return s.MemBW * bytes / (bytes + s.HalfSatBytes)
}

// KernelTime returns the modelled execution time of a kernel body
// (excluding launch latency): the roofline maximum of the memory and
// compute times.
func (s DeviceSpec) KernelTime(bytes, flops float64) float64 {
	var tMem, tFlop float64
	if bytes > 0 {
		tMem = bytes / s.EffBandwidth(bytes)
	}
	if flops > 0 && s.PeakFlops > 0 {
		tFlop = flops / s.PeakFlops
	}
	if tFlop > tMem {
		return tFlop
	}
	return tMem
}

// Kernel describes one unit of device work. Run may be nil for
// accounting-only kernels (used by the performance model at paper scale
// where the fields do not exist in memory).
type Kernel struct {
	Name  string
	Bytes float64 // DRAM traffic in bytes
	Flops float64
	Run   func()

	// Reads and Writes name the fields the kernel touches; graph capture
	// uses them to build the dependency DAG that allows independent kernels
	// (e.g. per-PFT vegetation updates) to overlap on replay.
	Reads  []string
	Writes []string
}

// KernelStats accumulates per-kernel-name timing.
type KernelStats struct {
	Count   int64
	Bytes   float64
	Seconds float64
}

// Device executes kernels and accounts simulated time and energy.
// Devices are not safe for concurrent use by multiple goroutines; each
// component owns its device (as each MPI rank owns its GPU in the paper).
type Device struct {
	Spec DeviceSpec

	// mu guards the clock, energy and statistics so that two components
	// sharing one device (e.g. a non-heterogeneous mapping where the
	// ocean serialises with the atmosphere) can launch concurrently.
	// Graph capture is not concurrency-safe: a capturing device must be
	// driven by one goroutine.
	mu sync.Mutex

	simTime   float64
	energy    float64
	launches  int64
	bytes     float64
	flops     float64
	perKernel map[string]*KernelStats

	// Power cap imposed by the superchip's shared TDP; 0 means uncapped.
	// When the device would draw more than the cap, execution is scaled
	// down proportionally (frequency throttling).
	powerCap float64

	// streamBusy holds outstanding per-stream work since the last Sync.
	streamBusy map[int]float64

	capturing bool
	captured  []Kernel

	// slow is a straggler multiplier on every kernel duration (0 or 1 =
	// nominal); hook, when non-nil, runs after each kernel body on the
	// launching goroutine. Both are fault-injection seams and cost one
	// branch when unused.
	slow float64
	hook func(name string)

	// track records launches, graph replays and stream syncs when tracing
	// is attached (nil otherwise — one branch per launch).
	track *trace.Track
}

// NewDevice creates a device with zeroed clocks.
func NewDevice(spec DeviceSpec) *Device {
	return &Device{Spec: spec, perKernel: make(map[string]*KernelStats)}
}

// SetPowerCap limits the device's power draw (watts); kernels requiring
// more are throttled. Zero removes the cap.
func (d *Device) SetPowerCap(watts float64) { d.powerCap = watts }

// SetSlowdown makes the device a straggler: every kernel duration is
// multiplied by factor (>1 slows the simulated clock, the analogue of a
// thermally-throttled or failing chip). Values <= 1 restore nominal speed.
func (d *Device) SetSlowdown(factor float64) {
	d.mu.Lock()
	d.slow = factor
	d.mu.Unlock()
}

// SetLaunchHook installs f to run after each kernel body executes, both on
// eager launches and inside graph replays, on the launching goroutine.
// Fault injectors use it to stall, crash, or corrupt kernel outputs at a
// precise point in the execution stream; nil (the default) disables it.
// Like capture, the hook must be installed while no launches are in
// flight.
func (d *Device) SetLaunchHook(f func(name string)) { d.hook = f }

// PowerCap returns the current cap (0 = uncapped).
func (d *Device) PowerCap() float64 { return d.powerCap }

// AttachTrace puts the device's launches on an "exec:<name>" track of tr.
// Must be attached while no launches are in flight; a nil tracer detaches.
func (d *Device) AttachTrace(tr *trace.Tracer) {
	d.track = tr.Track("exec:"+d.Spec.Name, 0)
}

// Launch executes (or captures) one kernel. Outside capture the kernel's
// Run closure executes immediately and the simulated clock advances by
// launch latency plus the roofline time.
func (d *Device) Launch(k Kernel) {
	if d.capturing {
		d.captured = append(d.captured, k)
		return
	}
	t0 := d.track.Start()
	if k.Run != nil {
		k.Run()
	}
	if d.hook != nil {
		d.hook(k.Name)
	}
	dur := d.throttled(d.Spec.KernelTime(k.Bytes, k.Flops))
	d.account(k, d.Spec.LaunchLatency+dur, dur)
	// The nil guard is load-bearing: the span name concatenation must not
	// be evaluated (it allocates) when tracing is off — the disabled
	// launch path is allocation-free by contract (BenchmarkStepWindow).
	if d.track != nil {
		if d.Spec.Cores > 0 {
			// CPU-side launches report the effective parallel width of the
			// worker pool their kernel bodies dispatch onto.
			d.track.EndArg("launch:"+k.Name, t0, "workers", int64(sched.Workers()))
		} else {
			d.track.EndArg("launch:"+k.Name, t0, "bytes", int64(k.Bytes))
		}
	}
}

// throttled scales a duration up when the power the kernel wants exceeds
// the cap, and applies the straggler slowdown.
func (d *Device) throttled(dur float64) float64 {
	if d.slow > 1 {
		dur *= d.slow
	}
	if d.powerCap <= 0 || dur <= 0 {
		return dur
	}
	want := d.kernelPower()
	if want <= d.powerCap {
		return dur
	}
	return dur * want / d.powerCap
}

// kernelPower is the draw while running a bandwidth-saturating kernel.
func (d *Device) kernelPower() float64 {
	return d.Spec.PowerIdle + 1.0*(d.Spec.PowerMax-d.Spec.PowerIdle)
}

func (d *Device) account(k Kernel, wall, active float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.simTime += wall
	d.launches++
	d.bytes += k.Bytes
	d.flops += k.Flops
	util := 0.0
	if wall > 0 {
		util = active / wall
	}
	p := d.Spec.PowerIdle + util*(d.Spec.PowerMax-d.Spec.PowerIdle)
	if d.powerCap > 0 && p > d.powerCap {
		p = d.powerCap
	}
	d.energy += p * wall
	st := d.perKernel[k.Name]
	if st == nil {
		st = &KernelStats{}
		d.perKernel[k.Name] = st
	}
	st.Count++
	st.Bytes += k.Bytes
	st.Seconds += wall
}

// AdvanceIdle advances the simulated clock without work (waiting at a
// coupler synchronisation point), charging idle power.
func (d *Device) AdvanceIdle(seconds float64) {
	if seconds <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.simTime += seconds
	d.energy += d.Spec.PowerIdle * seconds
}

// SimTime returns the simulated wall-clock seconds consumed so far.
func (d *Device) SimTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simTime
}

// Energy returns the simulated energy in joules.
func (d *Device) Energy() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy
}

// Launches returns the number of kernel launches (graph replays count the
// kernels they contain once at capture, not per replay).
func (d *Device) Launches() int64 { return d.launches }

// BytesMoved returns total modelled DRAM traffic.
func (d *Device) BytesMoved() float64 { return d.bytes }

// Stats returns a copy of the per-kernel statistics, sorted by name.
func (d *Device) Stats() []NamedStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NamedStats, 0, len(d.perKernel))
	for name, st := range d.perKernel {
		out = append(out, NamedStats{Name: name, KernelStats: *st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedStats pairs a kernel name with its accumulated stats.
type NamedStats struct {
	Name string
	KernelStats
}

// Reset zeroes clocks, energy and statistics (not the power cap).
func (d *Device) Reset() {
	d.simTime = 0
	d.energy = 0
	d.launches = 0
	d.bytes = 0
	d.flops = 0
	d.perKernel = make(map[string]*KernelStats)
}

// SustainedBandwidth returns the average achieved DRAM bandwidth over all
// executed kernels (bytes moved / busy seconds), the quantity plotted in
// the paper's §5.2 bandwidth figure.
func (d *Device) SustainedBandwidth() float64 {
	if d.simTime == 0 {
		return 0
	}
	return d.bytes / d.simTime
}

// BeginCapture switches the device into graph capture mode: subsequent
// Launch calls record kernels instead of executing them.
func (d *Device) BeginCapture() {
	if d.capturing {
		panic("exec: nested capture")
	}
	d.capturing = true
	d.captured = nil
}

// EndCapture finishes capture and returns the recorded graph.
func (d *Device) EndCapture() (*Graph, error) {
	if !d.capturing {
		return nil, fmt.Errorf("exec: EndCapture without BeginCapture")
	}
	d.capturing = false
	g := &Graph{device: d, kernels: d.captured}
	d.captured = nil
	g.buildLevels()
	return g, nil
}

// Graph is a captured kernel sequence, the analogue of a CUDA Graph: on
// replay the kernels execute without per-launch latency, and kernels with
// no data dependencies overlap (their modelled durations combine as the
// max within each dependency level rather than the sum).
type Graph struct {
	device  *Device
	kernels []Kernel
	levels  [][]int // indices into kernels, topological levels
}

// buildLevels computes dependency levels with a simple last-writer
// analysis over the declared Reads/Writes sets: a kernel depends on the
// latest earlier kernel that wrote any field it reads or writes
// (RAW/WAW/WAR through program order).
func (g *Graph) buildLevels() {
	level := make([]int, len(g.kernels))
	lastWrite := map[string]int{}  // field -> kernel index of last writer
	lastAccess := map[string]int{} // field -> kernel index of last reader/writer
	maxLevel := 0
	for i, k := range g.kernels {
		lv := 0
		dep := func(j int) {
			if j >= 0 && level[j]+1 > lv {
				lv = level[j] + 1
			}
		}
		for _, f := range k.Reads {
			if w, ok := lastWrite[f]; ok {
				dep(w)
			}
		}
		for _, f := range k.Writes {
			if a, ok := lastAccess[f]; ok {
				dep(a)
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
		for _, f := range k.Writes {
			lastWrite[f] = i
			lastAccess[f] = i
		}
		for _, f := range k.Reads {
			lastAccess[f] = i
		}
	}
	g.levels = make([][]int, maxLevel+1)
	for i := range g.kernels {
		g.levels[level[i]] = append(g.levels[level[i]], i)
	}
}

// NumKernels returns the number of captured kernels.
func (g *Graph) NumKernels() int { return len(g.kernels) }

// NumLevels returns the depth of the dependency DAG.
func (g *Graph) NumLevels() int { return len(g.levels) }

// Replay executes all captured kernels in program order (so results are
// bit-identical to eager launches) while charging the overlapped,
// latency-free graph cost to the simulated clock.
func (g *Graph) Replay() {
	d := g.device
	if d.capturing {
		panic("exec: replay during capture")
	}
	var wall float64
	for _, lvl := range g.levels {
		var maxDur float64
		for _, i := range lvl {
			k := g.kernels[i]
			dur := d.throttled(d.Spec.KernelTime(k.Bytes, k.Flops))
			if dur > maxDur {
				maxDur = dur
			}
		}
		wall += maxDur
	}
	wall += d.Spec.GraphReplayLatency
	// Execute bodies in program order for determinism.
	t0 := d.track.Start()
	var bytes, flops float64
	for _, k := range g.kernels {
		if k.Run != nil {
			k.Run()
		}
		if d.hook != nil {
			d.hook(k.Name)
		}
		bytes += k.Bytes
		flops += k.Flops
	}
	d.account(Kernel{Name: "graph:" + g.label(), Bytes: bytes, Flops: flops}, wall, wall)
	if d.track != nil {
		d.track.EndArg("replay:"+g.label(), t0, "kernels", int64(len(g.kernels)))
	}
}

func (g *Graph) label() string {
	if len(g.kernels) == 0 {
		return "empty"
	}
	return fmt.Sprintf("%s+%d", g.kernels[0].Name, len(g.kernels)-1)
}

// ParallelFor runs body(i) for i in [0,n) with up to workers-way
// parallelism; it is the runtime's analogue of an OpenMP parallel loop on
// CPU devices. With workers <= 1 (or a loop too short to split) the loop
// runs inline. The iterations execute on the shared persistent worker
// pool (internal/sched) rather than per-call goroutines, so repeated
// launches spawn nothing in steady state.
func ParallelFor(n, workers int, body func(i int)) {
	if workers <= 1 || n < 2*workers {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	sched.RunWidth(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
