package exec

import "fmt"

// Asynchronous streams: the paper's kernels launch with OpenACC ASYNC(1)
// — work on different streams overlaps, and the host synchronises at
// coupling or halo-exchange points. LaunchOnStream charges the kernel to a
// per-stream clock; Sync advances the device clock by the busiest stream
// since the last synchronisation (the wall time of the overlapped bundle)
// while energy reflects the total active time of all streams.
//
// Streams and graphs compose conceptually but not in capture: a capturing
// device rejects stream launches (CUDA has stream-capture instead; the
// graph path here already models the overlap).

// LaunchOnStream executes kernel k on the given stream id (asynchronous
// with respect to other streams; ordered within its stream).
func (d *Device) LaunchOnStream(stream int, k Kernel) {
	if d.capturing {
		panic("exec: LaunchOnStream during graph capture; use Launch")
	}
	t0 := d.track.Start()
	if d.track != nil {
		// Concatenating the span name allocates; only do it when tracing
		// is on so the disabled stream path stays allocation-free.
		defer d.track.EndArg("stream:"+k.Name, t0, "stream", int64(stream))
	}
	if k.Run != nil {
		k.Run()
	}
	dur := d.throttled(d.Spec.KernelTime(k.Bytes, k.Flops))
	wall := d.Spec.LaunchLatency + dur
	d.mu.Lock()
	if d.streamBusy == nil {
		d.streamBusy = map[int]float64{}
	}
	d.streamBusy[stream] += wall
	// Account bytes/energy now; the clock advances at Sync.
	d.launches++
	d.bytes += k.Bytes
	d.flops += k.Flops
	p := d.Spec.PowerIdle + (d.Spec.PowerMax - d.Spec.PowerIdle)
	if d.powerCap > 0 && p > d.powerCap {
		p = d.powerCap
	}
	d.energy += p * wall
	st := d.perKernel[k.Name]
	if st == nil {
		st = &KernelStats{}
		d.perKernel[k.Name] = st
	}
	st.Count++
	st.Bytes += k.Bytes
	st.Seconds += wall
	d.mu.Unlock()
}

// Sync waits for all streams: the device clock advances by the busiest
// stream's outstanding time, and the per-stream clocks reset. It returns
// the wall time of the synchronised bundle.
func (d *Device) Sync() float64 {
	t0 := d.track.Start()
	defer d.track.End("stream:sync", t0)
	d.mu.Lock()
	defer d.mu.Unlock()
	var maxBusy float64
	for _, b := range d.streamBusy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	for s := range d.streamBusy {
		delete(d.streamBusy, s)
	}
	d.simTime += maxBusy
	return maxBusy
}

// PendingStreams returns the number of streams with outstanding work.
func (d *Device) PendingStreams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.streamBusy {
		if b > 0 {
			n++
		}
	}
	return n
}

// String describes the device state briefly.
func (d *Device) String() string {
	return fmt.Sprintf("%s: %.6fs, %d launches", d.Spec.Name, d.SimTime(), d.Launches())
}
