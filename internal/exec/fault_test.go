package exec

import "testing"

func faultSpec() DeviceSpec {
	return DeviceSpec{Name: "t", MemBW: 1e9, PeakFlops: 1e12, LaunchLatency: 1e-6}
}

// TestSlowdownStretchesClock: a straggler device charges proportionally
// more simulated time for the same kernels, and <=1 restores nominal.
func TestSlowdownStretchesClock(t *testing.T) {
	k := Kernel{Name: "k", Bytes: 1e6}
	run := func(factor float64) float64 {
		d := NewDevice(faultSpec())
		d.SetSlowdown(factor)
		for i := 0; i < 10; i++ {
			d.Launch(k)
		}
		return d.SimTime()
	}
	nominal := run(0)
	if run(1) != nominal {
		t.Error("factor 1 changed the clock")
	}
	slow := run(3)
	// Launch latency is not stretched, so the ratio is below 3 but the
	// kernel time itself must triple.
	wantMin := nominal + 2*10*faultSpec().KernelTime(1e6, 0)
	if slow < wantMin*(1-1e-12) {
		t.Errorf("slowdown 3: %v, want >= %v (nominal %v)", slow, wantMin, nominal)
	}
}

// TestLaunchHookSeesEveryKernel: the hook observes eager launches and
// graph-replayed kernels alike, after each body ran.
func TestLaunchHookSeesEveryKernel(t *testing.T) {
	d := NewDevice(faultSpec())
	var seen []string
	ran := false
	d.SetLaunchHook(func(name string) {
		if name == "a" && !ran {
			t.Error("hook ran before the kernel body")
		}
		seen = append(seen, name)
	})
	d.Launch(Kernel{Name: "a", Run: func() { ran = true }})

	d.BeginCapture()
	d.Launch(Kernel{Name: "b"})
	d.Launch(Kernel{Name: "c"})
	g, err := d.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	g.Replay()
	want := []string{"a", "b", "c"}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}

// TestLaunchHookPanicPropagates: a crash injected through the hook
// surfaces as an ordinary panic on the launching goroutine (the model's
// supervisor converts it into a window failure).
func TestLaunchHookPanicPropagates(t *testing.T) {
	d := NewDevice(faultSpec())
	d.SetLaunchHook(func(name string) { panic("injected device fault") })
	defer func() {
		if recover() == nil {
			t.Error("hook panic was swallowed")
		}
	}()
	d.Launch(Kernel{Name: "boom"})
}
