package exec

import (
	"math"
	"testing"
)

func TestStreamsOverlap(t *testing.T) {
	d := NewDevice(testSpec())
	// Two equal kernels on different streams: wall = one kernel.
	k := Kernel{Name: "k", Bytes: 1e7}
	single := d.Spec.LaunchLatency + d.Spec.KernelTime(1e7, 0)
	d.LaunchOnStream(1, k)
	d.LaunchOnStream(2, k)
	if d.PendingStreams() != 2 {
		t.Fatalf("pending = %d", d.PendingStreams())
	}
	wall := d.Sync()
	if math.Abs(wall-single) > 1e-15 {
		t.Errorf("overlapped wall = %v, want %v", wall, single)
	}
	if math.Abs(d.SimTime()-single) > 1e-15 {
		t.Errorf("device clock = %v, want %v", d.SimTime(), single)
	}
	if d.PendingStreams() != 0 {
		t.Error("streams not drained by Sync")
	}
}

func TestStreamSerialisesWithinStream(t *testing.T) {
	d := NewDevice(testSpec())
	k := Kernel{Name: "k", Bytes: 1e7}
	single := d.Spec.LaunchLatency + d.Spec.KernelTime(1e7, 0)
	d.LaunchOnStream(1, k)
	d.LaunchOnStream(1, k)
	if wall := d.Sync(); math.Abs(wall-2*single) > 1e-15 {
		t.Errorf("same-stream wall = %v, want %v", wall, 2*single)
	}
}

func TestStreamEnergyCountsAllWork(t *testing.T) {
	d := NewDevice(testSpec())
	k := Kernel{Name: "k", Bytes: 1e7}
	d.LaunchOnStream(1, k)
	d.LaunchOnStream(2, k)
	d.Sync()
	// Energy covers both kernels' active time even though wall is one.
	single := d.Spec.LaunchLatency + d.Spec.KernelTime(1e7, 0)
	wantE := 2 * single * d.Spec.PowerMax
	if math.Abs(d.Energy()-wantE) > 1e-9*wantE {
		t.Errorf("energy = %v, want %v", d.Energy(), wantE)
	}
}

func TestStreamRunsBody(t *testing.T) {
	d := NewDevice(testSpec())
	ran := false
	d.LaunchOnStream(3, Kernel{Name: "k", Bytes: 8, Run: func() { ran = true }})
	if !ran {
		t.Error("body did not run")
	}
	d.Sync()
}

func TestStreamDuringCapturePanics(t *testing.T) {
	d := NewDevice(testSpec())
	d.BeginCapture()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.LaunchOnStream(1, Kernel{Name: "k"})
}

func TestSyncEmptyIsNoOp(t *testing.T) {
	d := NewDevice(testSpec())
	if w := d.Sync(); w != 0 {
		t.Errorf("empty sync = %v", w)
	}
	if d.String() == "" {
		t.Error("empty String")
	}
}
