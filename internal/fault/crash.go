// Process-level crash harness: a KillSpec names one point in a supervised
// run at which the process SIGKILLs itself — a coupling-window boundary,
// or one of the durability barriers inside the durable checkpoint write
// protocol (mid-write, torn state on disk). The crash-lottery test and
// esmrun -crash-at use it to prove the property the durable store sells:
// no matter where the process dies, a resume continues the run
// byte-for-byte identical to an uninterrupted one.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"

	"icoearth/internal/coupler"
	"icoearth/internal/restart"
)

// killSites are the durability barriers restart exposes to the kill hook,
// in write-protocol order. "shard-temp" fires with a shard's temp file
// fsynced but not yet renamed, "manifest-temp" likewise for the manifest
// (every shard already in place), "manifest-published" after the
// generation is fully durable.
var killSites = []string{"shard-temp", "manifest-temp", "manifest-published"}

// KillSpec is one self-SIGKILL point in a supervised run.
type KillSpec struct {
	// Window kills at the start of this coupling window (used when Site
	// is empty).
	Window int
	// Site kills at the Occurrence'th firing of this durability barrier
	// (see killSites) inside the durable checkpoint writer.
	Site       string
	Occurrence int
}

// ParseKillSpec parses "window=N" (kill at the start of window N) or
// "write=SITE:N" (kill at the N'th firing of durability barrier SITE;
// ":N" optional, default 1).
func ParseKillSpec(s string) (KillSpec, error) {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return KillSpec{}, fmt.Errorf("fault: kill spec %q: want window=N or write=SITE[:N]", s)
	}
	switch key {
	case "window":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return KillSpec{}, fmt.Errorf("fault: kill spec %q: bad window number", s)
		}
		return KillSpec{Window: n}, nil
	case "write":
		site, occStr, hasOcc := strings.Cut(val, ":")
		occ := 1
		if hasOcc {
			n, err := strconv.Atoi(occStr)
			if err != nil || n < 1 {
				return KillSpec{}, fmt.Errorf("fault: kill spec %q: bad occurrence", s)
			}
			occ = n
		}
		valid := false
		for _, known := range killSites {
			if site == known {
				valid = true
			}
		}
		if !valid {
			return KillSpec{}, fmt.Errorf("fault: kill spec %q: unknown site %q (want one of %s)",
				s, site, strings.Join(killSites, ", "))
		}
		return KillSpec{Site: site, Occurrence: occ}, nil
	}
	return KillSpec{}, fmt.Errorf("fault: kill spec %q: unknown key %q", s, key)
}

func (ks KillSpec) String() string {
	if ks.Site != "" {
		return fmt.Sprintf("write=%s:%d", ks.Site, ks.Occurrence)
	}
	return fmt.Sprintf("window=%d", ks.Window)
}

// Arm installs the kill point. Window kills wrap the supervisor's
// BeforeWindow hook (existing hooks run first); site kills install the
// restart package's kill hook, which the durable writer invokes from
// whichever goroutine runs the write — SIGKILL works from any of them.
// Arm before the run starts; the hook stays until the process dies.
func (ks KillSpec) Arm(cfg *coupler.SuperviseConfig) {
	if ks.Site == "" {
		prev := cfg.Hooks.BeforeWindow
		cfg.Hooks.BeforeWindow = func(w int) {
			if prev != nil {
				prev(w)
			}
			if w == ks.Window {
				sigkillSelf()
			}
		}
		return
	}
	// Only the single background writer (or the caller, in sync mode)
	// reaches the barriers, and writes are joined before the next one
	// starts, so this counter needs no lock.
	occurrences := 0
	restart.SetKillHook(func(site string) {
		if site != ks.Site {
			return
		}
		occurrences++
		if occurrences == ks.Occurrence {
			sigkillSelf()
		}
	})
}

// sigkillSelf delivers SIGKILL to the own process: death with no deferred
// functions, no flushes, no atexit — the honest process-loss model. The
// signal cannot be caught; block until it lands so no further instruction
// of the torn write executes.
func sigkillSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}
