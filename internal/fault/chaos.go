// Wiring between an Injector and a supervised coupled run: Arm attaches
// the plan to the EarthSystem's device hook seams and the Supervisor's
// window/checkpoint hooks, so chaos runs exercise exactly the production
// recovery machinery.
package fault

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"icoearth/internal/atmos"
	"icoearth/internal/coupler"
)

// Arm installs the injector's faults on the Earth system and supervisor
// config: kernel-launch faults (crash, stall, NaN) on every device,
// per-window slowdown on the GPU device, and checkpoint corruption after
// each checkpoint write. Existing hooks in cfg are preserved and run
// first.
func Arm(in *Injector, es *coupler.EarthSystem, cfg *coupler.SuperviseConfig) {
	if tr := es.Tracer(); tr != nil {
		in.SetTrace(tr.Track("fault", 0))
	}
	prevBefore := cfg.Hooks.BeforeWindow
	cfg.Hooks.BeforeWindow = func(w int) {
		if prevBefore != nil {
			prevBefore(w)
		}
		in.SetWindow(w)
		// Straggler faults last one window; restore nominal speed first.
		es.GPU.SetSlowdown(1)
		if f, ok := in.take(
			func(f Fault) bool { return f.Kind == Slowdown },
			func(f Fault) string { return fmt.Sprintf("GPU slowed %gx for one window", f.Factor) },
		); ok {
			es.GPU.SetSlowdown(f.Factor)
		}
	}
	prevAfter := cfg.Hooks.AfterCheckpoint
	cfg.Hooks.AfterCheckpoint = func(dir string, w int) {
		if prevAfter != nil {
			prevAfter(dir, w)
		}
		in.SetWindow(w)
		if f, ok := in.take(
			func(f Fault) bool { return f.Kind == CkptTruncate || f.Kind == CkptBitFlip },
			func(f Fault) string { return fmt.Sprintf("%s in %s", f.Kind, dir) },
		); ok {
			if err := CorruptDir(dir, f.Kind, in.rng); err != nil {
				panic(fmt.Sprintf("fault: corrupting checkpoint: %v", err))
			}
		}
	}
	hook := in.launchHook(es)
	es.GPU.SetLaunchHook(hook)
	es.CPU.SetLaunchHook(hook)
	if es.Bgc.Dev != es.GPU && es.Bgc.Dev != es.CPU {
		es.Bgc.Dev.SetLaunchHook(hook)
	}
}

// oceanSideKernel reports whether a kernel runs on the ocean/BGC side.
func oceanSideKernel(name string) bool {
	return strings.HasPrefix(name, "ocean:") || strings.HasPrefix(name, "bgc:")
}

// oceanSideField reports whether a NaN target lives in ocean/BGC state.
func oceanSideField(target string) bool {
	return strings.HasPrefix(target, "oc.") || strings.HasPrefix(target, "bgc.")
}

// launchHook returns the per-kernel fault hook. NaN faults only fire from
// a kernel on the side that owns the target field, so the corruption is
// written by the goroutine that owns that state (no data race with the
// concurrently running other side).
func (in *Injector) launchHook(es *coupler.EarthSystem) func(name string) {
	return func(name string) {
		f, ok := in.take(func(f Fault) bool {
			switch f.Kind {
			case Crash, Stall:
				return f.Target == "" || strings.HasPrefix(name, f.Target)
			case NaN:
				return oceanSideField(f.Target) == oceanSideKernel(name)
			}
			return false
		}, func(f Fault) string {
			return fmt.Sprintf("%s in kernel %s (target %q)", f.Kind, name, f.Target)
		})
		if !ok {
			return
		}
		switch f.Kind {
		case Crash:
			panic(fmt.Sprintf("fault: injected crash in kernel %s at window %d", name, f.Window))
		case Stall:
			time.Sleep(f.StallFor)
		case NaN:
			field := nanTarget(es, f.Target)
			if field == nil {
				panic(fmt.Sprintf("fault: unknown NaN target %q", f.Target))
			}
			field[in.rng.Intn(len(field))] = math.NaN()
		}
	}
}

// nanTarget resolves a NaN fault's field name to the live slice.
func nanTarget(es *coupler.EarthSystem, target string) []float64 {
	switch target {
	case "", "atm.qv":
		return es.Atm.State.Tracers[atmos.TracerQV]
	case "atm.rho":
		return es.Atm.State.Rho
	case "atm.w":
		return es.Atm.State.W
	case "land.soilmoist":
		return es.Land.State.SoilMoist
	case "oc.temp":
		return es.Oc.State.Temp
	case "oc.salt":
		return es.Oc.State.Salt
	case "bgc.tracer0":
		return es.Bgc.State.Tracers[0]
	}
	return nil
}

// CorruptDir damages one restart file in a checkpoint directory: truncated
// to half (CkptTruncate) or one bit flipped in the payload (CkptBitFlip).
// The victim file and flip position come from the injector's seeded RNG.
func CorruptDir(dir string, kind Kind, rng *RNG) error {
	paths, err := filepath.Glob(filepath.Join(dir, "restart_*.bin"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("fault: no restart files in %s", dir)
	}
	sort.Strings(paths)
	victim := paths[rng.Intn(len(paths))]
	switch kind {
	case CkptTruncate:
		fi, err := os.Stat(victim)
		if err != nil {
			return err
		}
		return os.Truncate(victim, fi.Size()/2)
	case CkptBitFlip:
		raw, err := os.ReadFile(victim)
		if err != nil {
			return err
		}
		if len(raw) < 16 {
			return fmt.Errorf("fault: %s too small to corrupt", victim)
		}
		off := 8 + rng.Intn(len(raw)-16)
		raw[off] ^= 1 << uint(rng.Intn(8))
		return os.WriteFile(victim, raw, 0o644)
	}
	return fmt.Errorf("fault: %v is not a checkpoint fault", kind)
}
