// Package fault is a deterministic, seeded fault-injection harness for
// chaos-testing the coupled Earth system. A Plan lists faults (kind +
// coupling window + optional target/argument); an Injector arms them
// through the hook seams that par.Comm, exec.Device and the coupler's
// Supervisor expose — rank crashes, message drop/delay, straggler devices,
// stalls, NaN corruption of prognostic fields and checkpoint corruption —
// without the production code paying anything when no injector is
// installed. Every fault fires at most once (so rollback-and-retry
// recovers), every firing is logged, and everything derives from one seed,
// making chaos runs exactly reproducible.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"icoearth/internal/par"
	"icoearth/internal/trace"
)

// RNG is a splitmix64 generator: tiny, seedable and stable across Go
// versions (unlike math/rand's default source), which keeps chaos runs
// reproducible from their seed alone.
type RNG struct{ s uint64 }

// NewRNG returns a generator for the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Uint64 returns the next value.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Kind enumerates the injectable fault types.
type Kind int

const (
	// Crash panics inside a kernel launch — the analogue of losing a rank
	// or device mid-window.
	Crash Kind = iota
	// Stall sleeps (wall clock) inside a kernel launch — a straggler that
	// the supervisor's watchdog must catch. Finite, so the window stays
	// joinable.
	Stall
	// NaN writes NaN into a prognostic field — a numerical blowup that the
	// health check must catch.
	NaN
	// Slowdown stretches one window's simulated kernel durations on the
	// GPU device — a degraded straggler that hurts τ but not correctness.
	Slowdown
	// CkptTruncate cuts a just-written checkpoint file in half.
	CkptTruncate
	// CkptBitFlip flips one bit in a just-written checkpoint file.
	CkptBitFlip
	// MsgDrop silently discards one par message.
	MsgDrop
	// MsgDelay reorders one par message behind the next send.
	MsgDelay
)

var kindNames = map[Kind]string{
	Crash: "crash", Stall: "stall", NaN: "nan", Slowdown: "slow",
	CkptTruncate: "ckpttrunc", CkptBitFlip: "ckptflip",
	MsgDrop: "drop", MsgDelay: "delay",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one planned injection.
type Fault struct {
	Kind   Kind
	Window int // coupling window in which it fires
	// Target narrows where the fault lands: a kernel-name prefix for
	// Crash/Stall (empty = first kernel of the window), a field name like
	// "atm.qv" for NaN.
	Target   string
	Factor   float64       // Slowdown multiplier
	StallFor time.Duration // Stall duration (wall clock)
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s@%d", f.Kind, f.Window)
	switch {
	case f.Kind == Stall:
		s += ":" + f.StallFor.String()
	case f.Kind == Slowdown:
		s += ":" + strconv.FormatFloat(f.Factor, 'g', -1, 64)
	case f.Target != "":
		s += ":" + f.Target
	}
	return s
}

// Plan is an ordered list of faults.
type Plan []Fault

func (p Plan) String() string {
	parts := make([]string, len(p))
	for i, f := range p {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// ParseChaosSpec parses a -chaos flag value of the form
//
//	seed=N[,plan=crash@3;nan@5:atm.qv;stall@2:50ms;ckptflip@4;slow@6:3]
//
// Everything after "plan=" is the plan (entries separated by semicolons).
// An absent plan returns an empty Plan; the caller typically substitutes
// AutoPlan. Returns the seed, the plan, and any parse error.
func ParseChaosSpec(spec string) (uint64, Plan, error) {
	var seed uint64
	var plan Plan
	seenSeed := false
	rest := spec
	for rest != "" {
		if strings.HasPrefix(rest, "plan=") {
			p, err := ParsePlan(rest[len("plan="):])
			if err != nil {
				return 0, nil, err
			}
			plan = p
			rest = ""
			break
		}
		kv := rest
		if i := strings.IndexByte(rest, ','); i >= 0 {
			kv, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return 0, nil, fmt.Errorf("fault: bad chaos option %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed, seenSeed = n, true
		default:
			return 0, nil, fmt.Errorf("fault: unknown chaos option %q", k)
		}
	}
	if !seenSeed {
		return 0, nil, fmt.Errorf("fault: chaos spec %q has no seed=", spec)
	}
	return seed, plan, nil
}

// ParsePlan parses "kind@window[:arg][;...]" entries.
func ParsePlan(s string) (Plan, error) {
	var plan Plan
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("fault: bad plan entry %q (want kind@window[:arg])", entry)
		}
		winStr, arg, _ := strings.Cut(rest, ":")
		w, err := strconv.Atoi(winStr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("fault: bad window in %q", entry)
		}
		f := Fault{Window: w}
		found := false
		for k := Crash; k <= MsgDelay; k++ {
			if kindNames[k] == kindStr {
				f.Kind, found = k, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown fault kind %q in %q", kindStr, entry)
		}
		switch f.Kind {
		case Stall:
			d := 50 * time.Millisecond
			if arg != "" {
				if d, err = time.ParseDuration(arg); err != nil {
					return nil, fmt.Errorf("fault: bad stall duration in %q: %v", entry, err)
				}
			}
			f.StallFor = d
		case Slowdown:
			f.Factor = 3
			if arg != "" {
				if f.Factor, err = strconv.ParseFloat(arg, 64); err != nil || f.Factor <= 1 {
					return nil, fmt.Errorf("fault: bad slowdown factor in %q", entry)
				}
			}
		default:
			f.Target = arg
		}
		plan = append(plan, f)
	}
	return plan, nil
}

// AutoPlan derives a small random plan for a run of the given window
// count: two or three faults from the kinds a supervised single-process
// run can recover from, at random interior windows.
func AutoPlan(rng *RNG, windows int) Plan {
	kinds := []Kind{Crash, NaN, Slowdown, CkptBitFlip, CkptTruncate}
	span := windows - 1
	if span < 1 {
		span = 1
	}
	n := 2 + rng.Intn(2)
	plan := make(Plan, 0, n)
	ckptFaults := 0
	for i := 0; i < n; i++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))], Window: 1 + rng.Intn(span)}
		// The supervisor keeps two checkpoint generations; corrupting more
		// than one per plan can wipe every intact generation and make the
		// run unsurvivable by construction. Auto plans must be survivable,
		// so cap checkpoint corruption at one fault and redraw the rest as
		// crashes.
		if f.Kind == CkptBitFlip || f.Kind == CkptTruncate {
			ckptFaults++
			if ckptFaults > 1 {
				f.Kind = Crash
			}
		}
		switch f.Kind {
		case Slowdown:
			f.Factor = float64(2 + rng.Intn(3))
		case NaN:
			f.Target = "atm.qv"
		case Crash:
			// Pin crashes to the dycore stream so the firing kernel does not
			// depend on which side launches first.
			f.Target = "dycore:"
		}
		plan = append(plan, f)
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].Window < plan[j].Window })
	return plan
}

// Event records one fault that actually fired.
type Event struct {
	Window int    `json:"window"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Injector holds a plan, the current coupling window, and the fired state
// of every fault. All methods are safe for concurrent use — hooks fire on
// model goroutines while the supervisor advances the window.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	rng    *RNG
	window int
	fired  []bool
	events []Event
	tk     *trace.Track // nil unless SetTrace attached a run trace
}

// NewInjector builds an injector for the plan, with all randomness (fault
// placement inside fields/files) derived from seed.
func NewInjector(seed uint64, plan Plan) *Injector {
	return &Injector{plan: plan, rng: NewRNG(seed), fired: make([]bool, len(plan))}
}

// SetTrace records every firing as an instant event on the given track
// (typically tracer.Track("fault", 0)); nil detaches.
func (in *Injector) SetTrace(t *trace.Track) {
	in.mu.Lock()
	in.tk = t
	in.mu.Unlock()
}

// SetWindow tells the injector which coupling window is about to run.
func (in *Injector) SetWindow(w int) {
	in.mu.Lock()
	in.window = w
	in.mu.Unlock()
}

// Events returns a copy of the firing log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// AllFired reports whether every planned fault has fired.
func (in *Injector) AllFired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.fired {
		if !f {
			return false
		}
	}
	return true
}

// take claims the first unfired fault at the current window that the
// match predicate accepts, marking it fired and logging detail.
func (in *Injector) take(match func(Fault) bool, detail func(Fault) string) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.plan {
		if in.fired[i] || f.Window != in.window || !match(f) {
			continue
		}
		in.fired[i] = true
		in.events = append(in.events, Event{Window: in.window, Kind: f.Kind.String(), Detail: detail(f)})
		in.tk.InstantArg("fault:"+f.Kind.String(), "window", int64(in.window))
		return f, true
	}
	return Fault{}, false
}

// MsgHook returns a par message hook that applies the plan's MsgDrop and
// MsgDelay faults (each once, at or after its window — par programs have
// no window clock of their own, so SetWindow gates them).
func (in *Injector) MsgHook() par.MsgHook {
	return func(from, to, tag, n int) par.MsgFate {
		f, ok := in.take(
			func(f Fault) bool { return f.Kind == MsgDrop || f.Kind == MsgDelay },
			func(f Fault) string {
				return fmt.Sprintf("%s message %d->%d tag %d (%d values)", f.Kind, from, to, tag, n)
			})
		if !ok {
			return par.DeliverMsg
		}
		if f.Kind == MsgDrop {
			return par.DropMsg
		}
		return par.DelayMsg
	}
}
