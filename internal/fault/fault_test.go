package fault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"icoearth/internal/par"
	"icoearth/internal/restart"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Error("different seeds gave the same first draw")
	}
}

func TestParseChaosSpec(t *testing.T) {
	seed, plan, err := ParseChaosSpec("seed=7,plan=crash@3;nan@5:atm.qv;stall@2:50ms;ckptflip@4;slow@6:3")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 7 {
		t.Errorf("seed = %d", seed)
	}
	want := Plan{
		{Kind: Crash, Window: 3},
		{Kind: NaN, Window: 5, Target: "atm.qv"},
		{Kind: Stall, Window: 2, StallFor: 50 * time.Millisecond},
		{Kind: CkptBitFlip, Window: 4},
		{Kind: Slowdown, Window: 6, Factor: 3},
	}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("plan = %v, want %v", plan, want)
	}
}

func TestParseChaosSpecSeedOnly(t *testing.T) {
	seed, plan, err := ParseChaosSpec("seed=3")
	if err != nil || seed != 3 || len(plan) != 0 {
		t.Errorf("seed=%d plan=%v err=%v", seed, plan, err)
	}
}

func TestParseChaosSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "plan=crash@1", "seed=x", "seed=1,frob=2",
		"seed=1,plan=crash", "seed=1,plan=warp@2", "seed=1,plan=crash@-1",
		"seed=1,plan=stall@1:xyz", "seed=1,plan=slow@1:0.5",
	} {
		if _, _, err := ParseChaosSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	plan, err := ParsePlan("crash@3:dycore;nan@5:atm.qv;stall@2:50ms;slow@6:3")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", plan.String(), err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Errorf("round trip: %v vs %v", plan, again)
	}
}

func TestAutoPlanDeterministic(t *testing.T) {
	a := AutoPlan(NewRNG(9), 8)
	b := AutoPlan(NewRNG(9), 8)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different plans: %v vs %v", a, b)
	}
	if len(a) < 2 {
		t.Errorf("plan too small: %v", a)
	}
	for _, f := range a {
		if f.Window < 1 || f.Window >= 8 {
			t.Errorf("fault outside interior windows: %v", f)
		}
	}
}

func TestInjectorFiresOncePerFault(t *testing.T) {
	in := NewInjector(1, Plan{{Kind: Crash, Window: 2}})
	match := func(f Fault) bool { return f.Kind == Crash }
	detail := func(f Fault) string { return "x" }
	in.SetWindow(1)
	if _, ok := in.take(match, detail); ok {
		t.Error("fired in the wrong window")
	}
	in.SetWindow(2)
	if _, ok := in.take(match, detail); !ok {
		t.Fatal("did not fire in its window")
	}
	if _, ok := in.take(match, detail); ok {
		t.Error("fired twice")
	}
	if !in.AllFired() {
		t.Error("AllFired false after firing everything")
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Window != 2 || ev[0].Kind != "crash" {
		t.Errorf("events = %v", ev)
	}
}

// TestMsgHookFaults: drop and delay faults applied through par's message
// hook — the dropped message never arrives (Recv times out), and the
// program still completes.
func TestMsgHookFaults(t *testing.T) {
	in := NewInjector(5, Plan{{Kind: MsgDrop, Window: 0}})
	w := par.NewWorld(2)
	w.SetMsgHook(in.MsgHook())
	var dropped int64
	err := w.RunErr(func(c *par.Comm) {
		if c.Rank == 0 {
			c.Send(1, 1, []float64{42})
			dropped = c.Stats.Dropped
		} else {
			if _, err := c.RecvTimeout(0, 1, 50*time.Millisecond); err == nil {
				t.Error("dropped message was delivered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("Dropped = %d", dropped)
	}
	if !in.AllFired() {
		t.Error("drop fault did not fire")
	}
}

func TestCorruptDirTruncate(t *testing.T) {
	dir := t.TempDir()
	s := restart.NewSnapshot()
	s.Add("f", make([]float64, 500))
	if _, err := restart.WriteMultiFile(s, dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := CorruptDir(dir, CkptTruncate, NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := restart.ReadMultiFile(dir); !errors.Is(err, restart.ErrCorrupt) {
		t.Errorf("truncated checkpoint read back: %v", err)
	}
}

func TestCorruptDirBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := restart.NewSnapshot()
	s.Add("f", make([]float64, 500))
	s.Add("g", make([]float64, 300))
	if _, err := restart.WriteMultiFile(s, dir, 2); err != nil {
		t.Fatal(err)
	}
	before := map[string]int64{}
	paths, _ := filepath.Glob(filepath.Join(dir, "restart_*.bin"))
	for _, p := range paths {
		fi, _ := os.Stat(p)
		before[p] = fi.Size()
	}
	if err := CorruptDir(dir, CkptBitFlip, NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	for p, sz := range before {
		fi, _ := os.Stat(p)
		if fi.Size() != sz {
			t.Errorf("bit flip changed size of %s", p)
		}
	}
	if _, err := restart.ReadMultiFile(dir); !errors.Is(err, restart.ErrCorrupt) {
		t.Errorf("bit-flipped checkpoint read back: %v", err)
	}
}

func TestCorruptDirEmpty(t *testing.T) {
	if err := CorruptDir(t.TempDir(), CkptBitFlip, NewRNG(1)); err == nil {
		t.Error("no error for empty dir")
	}
}
