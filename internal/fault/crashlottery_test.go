package fault

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"

	"icoearth/internal/coupler"
	"icoearth/internal/grid"
	"icoearth/internal/machine"
	"icoearth/internal/restart"
	"icoearth/internal/sched"
)

// The crash lottery re-execs the test binary as a child that SIGKILLs
// itself at a named point of a supervised run — a window boundary or a
// durability barrier mid-checkpoint-write — then resumes from the durable
// store left behind and asserts the finished trajectory is byte-for-byte
// the uninterrupted one. The environment variables carry the lottery
// ticket into the child.
const (
	crashSpecEnv    = "ICOEARTH_CRASH_SPEC"
	crashDirEnv     = "ICOEARTH_CRASH_DIR"
	crashWorkersEnv = "ICOEARTH_CRASH_WORKERS"
	crashOverlapEnv = "ICOEARTH_CRASH_OVERLAP"
	crashWindowsEnv = "ICOEARTH_CRASH_WINDOWS"
)

// lotteryWindows is the run length; every kill point must leave at least
// one published generation behind (the first generation lands during
// window 1), so window kills start at 2 and barrier occurrences start
// past one full generation write.
const lotteryWindows = 6

// lotterySystem builds the lottery's tiny grid — the same scale as
// verify.sh's chaos smoke — deterministically from (workers, overlap).
func lotterySystem(workers int, overlap bool) *coupler.EarthSystem {
	cfg := coupler.Config{
		Res:         grid.R2B(1),
		AtmLevels:   5,
		OceanLevels: 4,
		AtmDt:       120,
		OceanDt:     600,
		CouplingDt:  600,
		LandGraphs:  true,
		Workers:     workers,
		NoOverlap:   !overlap,
	}
	return coupler.NewOnSuperchip(cfg, machine.GH200(680), 150)
}

// fingerprint renders the conserved totals exactly (hex floats — the same
// encoding esmrun -sums uses), so equality below is bit-identity, not a
// tolerance.
func fingerprint(es *coupler.EarthSystem) string {
	return fmt.Sprintf("windows %d total_water_kg %x total_carbon_kg %x",
		es.Windows(), es.TotalWater(), es.TotalCarbon())
}

// TestCrashLotteryChild is not a test in its own right: it is the re-exec
// body TestCrashLottery drives. Without a lottery ticket in the
// environment it skips immediately.
func TestCrashLotteryChild(t *testing.T) {
	spec := os.Getenv(crashSpecEnv)
	if spec == "" {
		t.Skip("re-exec child body; driven by TestCrashLottery")
	}
	ks, err := ParseKillSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	workers, _ := strconv.Atoi(os.Getenv(crashWorkersEnv))
	windows, _ := strconv.Atoi(os.Getenv(crashWindowsEnv))
	es := lotterySystem(workers, os.Getenv(crashOverlapEnv) == "1")
	cfg := coupler.SuperviseConfig{
		Dir:             os.Getenv(crashDirEnv),
		CheckpointEvery: 1,
		Async:           true,
	}
	ks.Arm(&cfg)
	sv, err := coupler.NewSupervisor(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Run(windows); err != nil {
		t.Fatalf("child run failed before the kill fired: %v", err)
	}
	t.Fatalf("kill spec %s never fired in %d windows", ks, windows)
}

func TestCrashLottery(t *testing.T) {
	// The kill points: four window boundaries, and barrier occurrences
	// chosen so every durability site is hit at least twice, including
	// deep into the run (occurrence numbers count ALL firings; with the
	// default 3 shards a generation fires shard-temp 3 times, each other
	// barrier once).
	kills := []string{
		"window=2",
		"window=3",
		"window=4",
		"window=5",
		"write=shard-temp:4",
		"write=shard-temp:5",
		"write=shard-temp:8",
		"write=shard-temp:12",
		"write=manifest-temp:2",
		"write=manifest-temp:4",
		"write=manifest-published:2",
		"write=manifest-published:4",
	}
	if testing.Short() {
		// Smoke: one torn-write kill, one window kill.
		kills = []string{"write=manifest-temp:2", "window=3"}
	}
	matrix := []struct {
		workers int
		overlap bool
	}{
		{1, true}, {4, false}, {1, false}, {4, true},
	}
	defer sched.SetWorkers(0)

	// One uninterrupted reference per (workers, overlap) combination —
	// bare StepWindow loops, no supervisor, so the comparison target is
	// the plain model trajectory.
	refs := map[string]string{}
	for _, m := range matrix {
		es := lotterySystem(m.workers, m.overlap)
		for i := 0; i < lotteryWindows; i++ {
			if err := es.StepWindow(); err != nil {
				t.Fatal(err)
			}
		}
		refs[fmt.Sprintf("w%d-ov%v", m.workers, m.overlap)] = fingerprint(es)
	}

	for i, kill := range kills {
		m := matrix[i%len(matrix)]
		key := fmt.Sprintf("w%d-ov%v", m.workers, m.overlap)
		t.Run(kill+"/"+key, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashLotteryChild$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashSpecEnv+"="+kill,
				crashDirEnv+"="+dir,
				crashWorkersEnv+"="+strconv.Itoa(m.workers),
				crashOverlapEnv+"="+map[bool]string{true: "1", false: "0"}[m.overlap],
				crashWindowsEnv+"="+strconv.Itoa(lotteryWindows),
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child survived its own kill point:\n%s", out)
			}
			exitErr, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("re-exec failed: %v\n%s", err, out)
			}
			ws, ok := exitErr.Sys().(syscall.WaitStatus)
			if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("child did not die by SIGKILL: %v\n%s", err, out)
			}

			// Resume: a fresh system (fresh process analogue) restores the
			// newest valid generation the dead child left behind and runs to
			// the target window count.
			es := lotterySystem(m.workers, m.overlap)
			sv, err := coupler.NewSupervisor(es, coupler.SuperviseConfig{
				Dir: dir, CheckpointEvery: 1, Async: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			snap, meta, rejected, err := sv.Store().LoadNewest()
			if err != nil {
				t.Fatalf("no resumable generation after %s: %v", kill, err)
			}
			for _, r := range rejected {
				t.Logf("rejected generation %d: %s", r.Seq, r.Reason)
			}
			if err := es.ApplySnapshot(snap); err != nil {
				t.Fatal(err)
			}
			if meta.Window != es.Windows() {
				t.Fatalf("manifest window %d but restored state at window %d", meta.Window, es.Windows())
			}
			if _, err := sv.Run(lotteryWindows - es.Windows()); err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if got := fingerprint(es); got != refs[key] {
				t.Errorf("resumed trajectory diverged after %s:\n  got  %s\n  want %s", kill, got, refs[key])
			}
		})
	}

	// restart's kill hook is process-global state; detach it so later
	// tests in this binary cannot trip a stale barrier counter.
	restart.SetKillHook(nil)
}
