package fault

import (
	"math"
	"testing"

	"icoearth/internal/coupler"
	"icoearth/internal/machine"
)

func newChaosSystem(t *testing.T) *coupler.EarthSystem {
	t.Helper()
	return coupler.NewOnSuperchip(coupler.LaptopConfig(), machine.GH200(680), 150)
}

func relDiff(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

// TestChaosRunMatchesFaultFree is the acceptance test of the
// fault-injection layer: a supervised run hit by a kernel crash, a NaN
// blowup AND a corrupted checkpoint generation completes via
// rollback-and-retry, and its conserved totals land on the fault-free
// trajectory to near machine precision (checkpoints are bit-exact and the
// model is deterministic, so retried windows reproduce the clean run).
func TestChaosRunMatchesFaultFree(t *testing.T) {
	const windows = 5
	clean := newChaosSystem(t)
	for i := 0; i < windows; i++ {
		if err := clean.StepWindow(); err != nil {
			t.Fatal(err)
		}
	}

	// The checkpoint written at window 2 is bit-flipped and the NaN fires
	// inside window 2 itself, so the recovery MUST detect the corrupt
	// newest generation and fall back to the previous one.
	plan, err := ParsePlan("crash@1:dycore;ckptflip@2;nan@2:atm.qv")
	if err != nil {
		t.Fatal(err)
	}
	es := newChaosSystem(t)
	cfg := coupler.SuperviseConfig{Dir: t.TempDir(), CheckpointEvery: 1}
	in := NewInjector(1234, plan)
	Arm(in, es, &cfg)
	sv, err := coupler.NewSupervisor(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(windows)
	if err != nil {
		t.Fatalf("chaos run failed: %v\nreport: %+v\nevents: %+v", err, rep, in.Events())
	}
	if !in.AllFired() {
		t.Fatalf("not every planned fault fired: %+v", in.Events())
	}
	if rep.Rollbacks < 2 {
		t.Errorf("rollbacks = %d, want >= 2 (crash and NaN)", rep.Rollbacks)
	}
	sawCorrupt := false
	for _, f := range rep.Faults {
		if f.Kind == "checkpoint-corrupt" {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Errorf("corrupted generation never hit during recovery: %+v", rep.Faults)
	}
	if es.Windows() != windows {
		t.Errorf("windows = %d, want %d", es.Windows(), windows)
	}
	if d := relDiff(es.TotalWater(), clean.TotalWater()); !(d <= 1e-12) {
		t.Errorf("water off the fault-free trajectory by %e", d)
	}
	if d := relDiff(es.TotalCarbon(), clean.TotalCarbon()); !(d <= 1e-12) {
		t.Errorf("carbon off the fault-free trajectory by %e", d)
	}
	if rep.WaterDrift > 1e-9 || rep.CarbonDrift > 1e-9 {
		t.Errorf("conservation drift: water %e carbon %e", rep.WaterDrift, rep.CarbonDrift)
	}
}

// TestChaosAutoPlanSeedsComplete: several auto-derived plans all complete
// under supervision — the property the CI chaos job checks across seeds.
func TestChaosAutoPlanSeedsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	const windows = 4
	for seed := uint64(1); seed <= 3; seed++ {
		plan := AutoPlan(NewRNG(seed), windows)
		es := newChaosSystem(t)
		cfg := coupler.SuperviseConfig{Dir: t.TempDir(), CheckpointEvery: 1}
		in := NewInjector(seed, plan)
		Arm(in, es, &cfg)
		sv, err := coupler.NewSupervisor(es, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sv.Run(windows)
		if err != nil {
			t.Errorf("seed %d (plan %v) failed: %v\nreport %+v", seed, plan, err, rep)
			continue
		}
		if rep.WaterDrift > 1e-9 || rep.CarbonDrift > 1e-9 {
			t.Errorf("seed %d: drift water %e carbon %e", seed, rep.WaterDrift, rep.CarbonDrift)
		}
	}
}

// TestSlowdownFaultDegradesTauOnly: a straggler window slows the simulated
// clock (τ drops) but needs no recovery at all.
func TestSlowdownFaultDegradesTauOnly(t *testing.T) {
	plan, err := ParsePlan("slow@1:4")
	if err != nil {
		t.Fatal(err)
	}
	es := newChaosSystem(t)
	cfg := coupler.SuperviseConfig{Dir: t.TempDir()}
	in := NewInjector(7, plan)
	Arm(in, es, &cfg)
	sv, err := coupler.NewSupervisor(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rollbacks != 0 {
		t.Errorf("slowdown forced %d rollbacks", rep.Rollbacks)
	}
	if !in.AllFired() {
		t.Error("slowdown never fired")
	}

	ref := newChaosSystem(t)
	for i := 0; i < 3; i++ {
		if err := ref.StepWindow(); err != nil {
			t.Fatal(err)
		}
	}
	if es.Tau() >= ref.Tau() {
		t.Errorf("straggler run has tau %v >= clean %v", es.Tau(), ref.Tau())
	}
	if d := relDiff(es.TotalWater(), ref.TotalWater()); !(d <= 1e-12) {
		t.Errorf("slowdown perturbed the trajectory by %e", d)
	}
}
