#!/bin/sh
# verify.sh — the tiered verification gate.
#
#   ./verify.sh         tier-1: cleanliness + static analysis + short tests
#   ./verify.sh full    tier-2: adds sdfgdebug assertions, the race detector,
#                       the full test suite, and the benchgate perf gate
#                       against the latest committed BENCH_*.json baseline
#
# Order: cheapest-to-fail first. Formatting and module drift fail in
# milliseconds, the static layers (vet, icovet) in seconds, the dynamic
# ones last. Tier-1 uses `go test -short` so the multi-hour integration
# battery (longrun_test.go) and the multi-simulation benchmarks stay out
# of the inner loop; `full` runs everything.
set -eux

# --- tier 1 -----------------------------------------------------------
# Formatting: gofmt -l prints offending files; any output is a failure.
test -z "$(gofmt -l .)"
# Module drift: go.mod/go.sum must be exactly what go mod tidy produces.
go mod tidy -diff

go build ./...
# Generated-kernel drift: internal/gen/kernels_gen.go is codegen output
# checked in as its own golden; regenerating must be a no-op, or the tree
# carries hand edits to generated code (or a stale generation). Scoped to
# the generated package so the gate works on a dirty tree; CI runs the
# whole-tree variant on its clean checkout.
go generate ./...
git diff --exit-code -- internal/gen
go vet ./...
# icovet: the repo-specific analyzer suite, plus the suppression budget —
# every //icovet:ignore must name its analyzer and justify itself, and
# the total may not grow past the count below without a conscious,
# reviewed bump here and in ci.yml.
go run ./cmd/icovet -ignore-budget 5 ./...
go test -short ./...

[ "${1:-}" = "full" ] || exit 0

# --- tier 2 (full) ----------------------------------------------------
go test -tags sdfgdebug ./internal/sdfg/
# Race detector over every package. The short run covers the whole module
# (the long-haul integration batteries are too slow under the race
# runtime); the concurrency-critical packages then rerun un-short so
# their full suites — pool stress, halo exchange, supervised recovery —
# execute under the detector.
go test -race -short ./...
go test -race ./internal/sched/... ./internal/par/... ./internal/par/socket/... ./internal/exec/... ./internal/coupler/... ./internal/fault/... ./internal/restart/...
go test ./...
# Chaos smoke: a supervised run with injected faults must complete with
# conservation intact (tiny grid; exercises crash, rollback, retry; the
# coupling window overlapped — the default).
go run ./cmd/esmrun -hours 0.5 -grid 1 -atmlev 5 -oclev 4 -chaos seed=1
# Crash-resume smoke: a durable run SIGKILLed mid-checkpoint-write (a
# torn manifest genuinely on disk) must resume to the exact fingerprint
# of the uninterrupted durable run. The full seeded kill-point lottery
# runs in `go test ./internal/fault/` above; this drives the esmrun CLI
# path end to end.
CKPT_DIR="$(mktemp -d)"
go run ./cmd/esmrun -hours 0.5 -grid 1 -atmlev 5 -oclev 4 -ckpt-dir "$CKPT_DIR/ref" -sums "$CKPT_DIR/a.txt" > /dev/null
! go run ./cmd/esmrun -hours 0.5 -grid 1 -atmlev 5 -oclev 4 -ckpt-dir "$CKPT_DIR/crash" -crash-at write=manifest-temp:2 > /dev/null
go run ./cmd/esmrun -hours 0.5 -grid 1 -atmlev 5 -oclev 4 -resume "$CKPT_DIR/crash" -sums "$CKPT_DIR/b.txt" > /dev/null
cmp "$CKPT_DIR/a.txt" "$CKPT_DIR/b.txt"
rm -rf "$CKPT_DIR"
# Determinism smoke: the overlapped and the serialised coupling window
# must produce byte-for-byte identical conservation fingerprints (the CI
# determinism job runs the full kernels × workers × overlap matrix).
SUMS_DIR="$(mktemp -d)"
go run ./cmd/esmrun -hours 0.5 -overlap=true -sums "$SUMS_DIR/on.txt" > /dev/null
go run ./cmd/esmrun -hours 0.5 -overlap=false -sums "$SUMS_DIR/off.txt" > /dev/null
cmp "$SUMS_DIR/on.txt" "$SUMS_DIR/off.txt"
# Kernel-seam smoke: the SDFG-generated kernels (the default) and the
# retained hand twins must land on the byte-identical fingerprint.
go run ./cmd/esmrun -hours 0.5 -kernels hand -sums "$SUMS_DIR/hand.txt" > /dev/null
cmp "$SUMS_DIR/on.txt" "$SUMS_DIR/hand.txt"
# Transport smoke: four real rank processes over unix sockets must land
# on the byte-identical fingerprint (the CI determinism job runs the full
# ranks × transport matrix). Built to a binary first: the socket launcher
# re-execs os.Executable(), which under `go run` is a temp path that may
# vanish.
go build -o "$SUMS_DIR/esmrun" ./cmd/esmrun
"$SUMS_DIR/esmrun" -hours 0.5 -ranks 4 -transport socket -sums "$SUMS_DIR/socket.txt" > /dev/null
cmp "$SUMS_DIR/on.txt" "$SUMS_DIR/socket.txt"
rm -rf "$SUMS_DIR"
# Perf gate: rerun the benchmark suite and compare against the latest
# committed BENCH_<n>.json (tolerances live in internal/bench/compare.go).
go run ./cmd/benchgate gate -count 3
