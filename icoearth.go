// Package icoearth is a Go reproduction of "Computing the Full Earth
// System at 1km Resolution" (Klocke et al., SC '25): a coupled Earth
// system model — atmosphere, land with dynamic vegetation, ocean, sea ice
// and ocean biogeochemistry — on an icosahedral-triangular C-grid, together
// with the paper's performance machinery: the heterogeneous GPU/CPU
// component mapping with a shared power budget, CUDA-Graph-style kernel
// capture, a DaCe-style dataflow compiler for dycore kernels, multi-file
// checkpoint/restart, and a calibrated scaling model that regenerates
// every table and figure of the paper's evaluation.
//
// The package is the public facade: it assembles the coupled system at a
// laptop-scale resolution with every component active, runs it, and
// exposes throughput (τ), conservation diagnostics, and checkpointing.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
//
// Quickstart:
//
//	sim, err := icoearth.NewSimulation(icoearth.Options{})
//	if err != nil { ... }
//	if err := sim.Run(6 * time.Hour); err != nil { ... }
//	fmt.Printf("τ = %.0f simulated days per day\n", sim.Tau())
package icoearth

import (
	"fmt"
	"time"

	"icoearth/internal/atmos"
	"icoearth/internal/coupler"
	"icoearth/internal/grid"
	"icoearth/internal/machine"
	"icoearth/internal/restart"
)

// Options selects the simulation configuration.
type Options struct {
	// GridLevel is the icosahedral bisection level (R2B<level>); 0 means
	// the default laptop-scale grid (R2B2, ≈1280 cells, ≈630 km spacing).
	GridLevel int
	// AtmosphereLevels and OceanLevels are vertical resolutions (defaults
	// 10 and 8; the paper uses 90 and 72).
	AtmosphereLevels int
	OceanLevels      int
	// AtmosphereDt, OceanDt, CouplingDt in seconds (defaults 120/600/600;
	// the paper's 1.25 km run uses 10/60/600).
	AtmosphereDt float64
	OceanDt      float64
	CouplingDt   float64
	// BGCConcurrent runs the biogeochemistry concurrently on its own GPU
	// device instead of fused with the ocean on the CPU.
	BGCConcurrent bool
	// DisableLandGraphs turns off CUDA-Graph capture for the land kernels
	// (for ablation experiments).
	DisableLandGraphs bool
	// GrayRadiation enables the interactive gray radiation scheme in the
	// atmosphere (responds to the model's own H2O and CO2) instead of pure
	// Held-Suarez relaxation.
	GrayRadiation bool
	// Workers sets the parallel width of the shared kernel worker pool
	// (0 = GOMAXPROCS). Results are bit-identical at every width.
	Workers int
	// Kernels selects the hot-path kernel implementation: "" or "gen"
	// dispatches the SDFG-generated kernels (internal/gen, the default),
	// "hand" the hand-written twins retained for A/B comparison. Both
	// produce bit-identical results; the seam exists so the determinism
	// matrix can prove it end to end.
	Kernels string
	// NoOverlap serialises the ocean+BGC window after the atmosphere
	// window instead of overlapping them (the paper's functional
	// parallelism, on by default). Results are bit-identical either way;
	// the sequential path exists as the verification reference and for
	// ablation timings.
	NoOverlap bool
	// CPUPowerDraw is the Grace-CPU share of the superchip's TDP (watts,
	// default 150) — the §5.1.1 power-partition knob.
	CPUPowerDraw float64
	// TDP is the superchip's shared power budget (default: JUPITER's 680).
	TDP float64
}

func (o *Options) fill() {
	if o.GridLevel == 0 {
		o.GridLevel = 2
	}
	if o.AtmosphereLevels == 0 {
		o.AtmosphereLevels = 10
	}
	if o.OceanLevels == 0 {
		o.OceanLevels = 8
	}
	if o.AtmosphereDt == 0 {
		o.AtmosphereDt = 120
	}
	if o.OceanDt == 0 {
		o.OceanDt = 600
	}
	if o.CouplingDt == 0 {
		o.CouplingDt = 600
	}
	if o.CPUPowerDraw == 0 {
		o.CPUPowerDraw = 150
	}
	if o.TDP == 0 {
		o.TDP = 680
	}
}

// Simulation is a running coupled Earth system.
type Simulation struct {
	ES *coupler.EarthSystem // the assembled system (full access for experts)
}

// NewSimulation assembles the coupled Earth system on a simulated GH200
// superchip with the paper's component mapping: atmosphere + land on the
// GPU device, ocean + sea ice (+ biogeochemistry unless BGCConcurrent) on
// the CPU device.
func NewSimulation(opts Options) (*Simulation, error) {
	opts.fill()
	if opts.GridLevel < 1 || opts.GridLevel > 6 {
		return nil, fmt.Errorf("icoearth: grid level %d out of supported range 1..6", opts.GridLevel)
	}
	cfg := coupler.Config{
		Res:           grid.R2B(opts.GridLevel),
		AtmLevels:     opts.AtmosphereLevels,
		OceanLevels:   opts.OceanLevels,
		AtmDt:         opts.AtmosphereDt,
		OceanDt:       opts.OceanDt,
		CouplingDt:    opts.CouplingDt,
		BGCConcurrent: opts.BGCConcurrent,
		LandGraphs:    !opts.DisableLandGraphs,
		GrayRadiation: opts.GrayRadiation,
		Workers:       opts.Workers,
		Kernels:       opts.Kernels,
		NoOverlap:     opts.NoOverlap,
	}
	es := coupler.NewOnSuperchip(cfg, machine.GH200(opts.TDP), opts.CPUPowerDraw)
	return &Simulation{ES: es}, nil
}

// Run advances the simulation by the given simulated duration (rounded up
// to whole coupling windows).
func (s *Simulation) Run(simulated time.Duration) error {
	target := s.ES.SimTime() + simulated.Seconds()
	for s.ES.SimTime() < target {
		if err := s.ES.StepWindow(); err != nil {
			return err
		}
	}
	return nil
}

// SimTime returns the simulated model time advanced so far.
func (s *Simulation) SimTime() time.Duration {
	return time.Duration(s.ES.SimTime() * float64(time.Second))
}

// Tau returns the temporal compression (simulated time per wall-clock time
// on the simulated superchip) achieved so far.
func (s *Simulation) Tau() float64 { return s.ES.Tau() }

// Diagnostics summarises the conserved quantities and headline state.
type Diagnostics struct {
	SimTime        time.Duration
	Tau            float64
	TotalWaterKg   float64
	TotalCarbonKg  float64
	AtmosCO2PPM    float64 // mean mixing ratio expressed in µmol/mol
	MeanSST        float64 // °C
	SeaIceAreaM2   float64
	AtmWaitSeconds float64 // coupling wait of the GPU side (§6.3)
	OceanWaitSecs  float64
	AtmWaitFrac    float64 // AtmWaitSeconds over the GPU device's elapsed time
	GPUEnergyJ     float64
	CPUEnergyJ     float64
}

// Diagnostics computes the current diagnostic summary.
func (s *Simulation) Diagnostics() Diagnostics {
	es := s.ES
	oc := es.Oc.State
	var sst, area float64
	for i, c := range oc.Cells {
		a := es.G.CellArea[c]
		sst += oc.SST(i) * a
		area += a
	}
	// Mean CO2 mole fraction from mass mixing ratio.
	var q, n float64
	for _, v := range es.Atm.State.Tracers[atmos.TracerCO2] {
		q += v
		n++
	}
	meanQ := q / n
	return Diagnostics{
		SimTime:        s.SimTime(),
		Tau:            s.Tau(),
		TotalWaterKg:   es.TotalWater(),
		TotalCarbonKg:  es.TotalCarbon(),
		AtmosCO2PPM:    meanQ * (coupler.MolMassAir / 0.044) * 1e6,
		MeanSST:        sst / area,
		SeaIceAreaM2:   oc.IceArea(),
		AtmWaitSeconds: es.AtmWait,
		OceanWaitSecs:  es.OceanWait,
		AtmWaitFrac:    es.AtmWaitFrac(),
		GPUEnergyJ:     es.GPU.Energy(),
		CPUEnergyJ:     es.CPU.Energy(),
	}
}

// Checkpoint writes the full model state as a multi-file restart into dir
// using nfiles writer files, returning the bytes written.
func (s *Simulation) Checkpoint(dir string, nfiles int) (int64, error) {
	return restart.WriteMultiFile(s.snapshot(), dir, nfiles)
}

// Restore loads a checkpoint written by Checkpoint into this simulation
// (which must have been built with identical Options).
func (s *Simulation) Restore(dir string) error {
	snap, err := restart.ReadMultiFile(dir)
	if err != nil {
		return err
	}
	return s.scatter(snap)
}

// snapshot gathers every prognostic field plus the coupler's scalar
// accounting (see coupler.Snapshot).
func (s *Simulation) snapshot() *restart.Snapshot { return s.ES.Snapshot() }

// scatter restores fields from a snapshot in place.
func (s *Simulation) scatter(snap *restart.Snapshot) error {
	return s.ES.ApplySnapshot(snap)
}
