package icoearth

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md). Each benchmark
// both exercises the real code path at laptop scale and reports the
// paper-scale projection of the calibrated model as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number the paper reports (EXPERIMENTS.md records the
// comparison).
//
// Custom metric names are part of the repo's perf-regression contract:
// cmd/benchgate keys its BENCH_<n>.json baselines on them, so they are
// stable snake_case identifiers — renaming one invalidates every
// committed baseline (benchgate flags the old name as missing). The
// wall-clock-derived ones (tau_simdays_per_day, cells_per_sec,
// tau_simulated) are gated; the model-projection ones are recorded as
// informational trajectory (see internal/bench's policy table).
//
// The multi-simulation benchmarks are guarded behind -short so tier-1
// (`go test -short ./...`) and `benchgate -short` stay fast.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"icoearth/internal/atmos"
	"icoearth/internal/config"
	"icoearth/internal/coupler"
	"icoearth/internal/exec"
	"icoearth/internal/grid"
	"icoearth/internal/land"
	"icoearth/internal/machine"
	"icoearth/internal/ocean"
	"icoearth/internal/par"
	"icoearth/internal/perf"
	"icoearth/internal/restart"
	"icoearth/internal/sched"
	"icoearth/internal/sdfg"
	"icoearth/internal/trace"
	"icoearth/internal/vertical"
)

// BenchmarkTable1TauStar regenerates Table 1: τ and the rescaled τ* of the
// state-of-the-art systems, with this work's τ from the calibrated model.
func BenchmarkTable1TauStar(b *testing.B) {
	var rows []perf.Table1Row
	for i := 0; i < b.N; i++ {
		rows = perf.Table1()
	}
	for _, r := range rows {
		name := strings.ToLower(strings.ReplaceAll(r.Model, " ", "_"))
		b.ReportMetric(r.TauStar, "taustar_"+name)
	}
	b.ReportMetric(rows[3].Tau, "tau_this_work")
}

// BenchmarkTable2DoF regenerates Table 2's degrees-of-freedom accounting.
func BenchmarkTable2DoF(b *testing.B) {
	var d10, d1 float64
	for i := 0; i < b.N; i++ {
		d10 = config.TenKm().DegreesOfFreedom()
		d1 = config.OneKm().DegreesOfFreedom()
	}
	b.ReportMetric(d10/1e10, "dof_10km_e10")
	b.ReportMetric(d1/1e11, "dof_1p25km_e11")
}

// BenchmarkFigure2StrongScaling10km regenerates the Levante CPU-vs-GPU
// comparison (Figure 2 left).
func BenchmarkFigure2StrongScaling10km(b *testing.B) {
	var series []perf.Series
	for i := 0; i < b.N; i++ {
		series = perf.Figure2Left()
	}
	// Headline: GH200 ≈2× A100; report the 160-chip ratio.
	var a100, gh float64
	for _, p := range series[1].Points {
		if p.N == 160 {
			a100 = p.Tau
		}
	}
	for _, p := range series[2].Points {
		if p.N == 160 {
			gh = p.Tau
		}
	}
	b.ReportMetric(gh/a100, "gh200_vs_a100_160")
	b.ReportMetric(gh, "tau_gh200_160")
}

// BenchmarkFigure2Energy regenerates the energy comparison (Figure 2
// right): ≈4.4× more power on CPUs at matched time-to-solution.
func BenchmarkFigure2Energy(b *testing.B) {
	var e perf.EnergyComparison
	for i := 0; i < b.N; i++ {
		e = perf.Figure2Energy(160)
	}
	b.ReportMetric(e.PowerRatio, "cpu_gpu_power_ratio")
}

// BenchmarkFigure4StrongScaling1km regenerates Figure 4 (left): the
// 1.25 km Earth system on JUPITER and Alps.
func BenchmarkFigure4StrongScaling1km(b *testing.B) {
	var series []perf.Series
	for i := 0; i < b.N; i++ {
		series = perf.Figure4Left()
	}
	for _, p := range series[0].Points { // JUPITER
		b.ReportMetric(p.Tau, fmt.Sprintf("tau_jupiter_%d", p.N))
	}
	for _, p := range series[1].Points {
		if p.N == 8192 {
			b.ReportMetric(p.Tau, "tau_alps_8192")
		}
	}
}

// BenchmarkFigure4StrongScaling10km regenerates Figure 4 (right): the
// 10 km configuration on JEDI and Alps with the flattening near 512 chips.
func BenchmarkFigure4StrongScaling10km(b *testing.B) {
	var series []perf.Series
	for i := 0; i < b.N; i++ {
		series = perf.Figure4Right()
	}
	alps := series[1]
	for _, p := range alps.Points {
		b.ReportMetric(p.Tau, fmt.Sprintf("tau_alps10km_%d", p.N))
	}
}

// BenchmarkLandCUDAGraphs regenerates the §5.1 land speedup: eager
// launches vs graph replay on two grid sizes (paper: 8–10× depending on
// grid spacing).
func BenchmarkLandCUDAGraphs(b *testing.B) {
	for _, lev := range []int{2, 3} {
		b.Run(fmt.Sprintf("R2B%d", lev), func(b *testing.B) {
			g := grid.New(grid.R2B(lev))
			mask := grid.NewMask(g)
			f := func(m *land.Model) *land.Forcing {
				fo := land.NewForcing(m.State.NLand())
				for i, c := range m.State.Cells {
					lat, _ := g.CellCenter[c].LatLon()
					fo.SWDown[i] = 340 * math.Cos(lat) * math.Cos(lat)
					fo.TAir[i] = 285
					fo.Precip[i] = 2e-5
				}
				return fo
			}
			run := func(graphs bool) float64 {
				dev := exec.NewDevice(machine.HopperGPU())
				m := land.NewModel(g, mask, dev)
				m.UseGraph = graphs
				fo := f(m)
				for n := 0; n < 5; n++ {
					m.Step(1800, fo)
				}
				return dev.SimTime()
			}
			b.ResetTimer()
			var speedup float64
			for i := 0; i < b.N; i++ {
				eager := run(false)
				graph := run(true)
				speedup = eager / graph
			}
			b.ReportMetric(speedup, "graph_speedup")
		})
	}
}

// BenchmarkHeterogeneousMapping regenerates the §5.1 "ocean for free"
// result: the coupled laptop system under the paper's mapping vs
// everything serialised on one device, plus the paper-scale wait
// fractions.
func BenchmarkHeterogeneousMapping(b *testing.B) {
	if testing.Short() {
		b.Skip("runs two full coupled simulations per iteration")
	}
	var tauSplit, tauFused float64
	for i := 0; i < b.N; i++ {
		// Both variants run without land graph capture so the comparison
		// isolates the mapping (capture also requires exclusive device
		// ownership, which the serialised variant does not have).
		simA, err := NewSimulation(Options{DisableLandGraphs: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := simA.Run(time.Hour); err != nil {
			b.Fatal(err)
		}
		tauSplit = simA.Tau()

		// Serialised mapping: CPU-side work charged to the GPU clock too.
		simB, err := NewSimulation(Options{DisableLandGraphs: true})
		if err != nil {
			b.Fatal(err)
		}
		simB.ES.CPU = simB.ES.GPU
		simB.ES.Oc.Dev = simB.ES.GPU
		simB.ES.Bgc.Dev = simB.ES.GPU
		if err := simB.Run(time.Hour); err != nil {
			b.Fatal(err)
		}
		tauFused = simB.Tau()
	}
	b.ReportMetric(tauSplit/tauFused, "heterogeneous_speedup")
	// Paper scale: what serialising the CPU-side work onto the GPUs would
	// cost at the tightest load-balance point (2048 chips the ocean is
	// 85% of the atmosphere's step time) and at the hero run.
	for _, n := range []int{2048, 20480} {
		r := perf.Project(machine.JUPITER(), config.OneKm(), n)
		b.ReportMetric((r.GPUStep+r.OceanPerAtmStep)/r.GPUStep,
			fmt.Sprintf("serialised_penalty_%d", n))
		if n == 20480 {
			b.ReportMetric(r.CouplingWaitFrac, "atm_wait_frac_20480")
		}
	}
}

// BenchmarkDaCeVsOpenACC regenerates the §5.2 performance figure: the
// compiled (DaCe) dycore kernels against the interpreter (directive)
// baseline, real wall-clock at laptop scale.
func BenchmarkDaCeVsOpenACC(b *testing.B) {
	g := grid.New(grid.R2B(3))
	const nlev = 30
	kine := make([]float64, g.NEdges*nlev)
	for i := range kine {
		kine[i] = math.Sin(float64(i) * 1e-3)
	}
	sd, bind, _, err := sdfg.BindEkinh(g, nlev, kine)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sdfg.Compile(sd, bind)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("directives-interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sdfg.Interpret(sd, bind); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dace-compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Run()
		}
		b.ReportMetric(float64(c.NaiveLookups)/float64(c.HoistedLookups), "index_lookup_reduction")
	})
}

// BenchmarkDaCeLoC regenerates the §5.2 lines-of-code accounting.
func BenchmarkDaCeLoC(b *testing.B) {
	var r sdfg.LoCReport
	for i := 0; i < b.N; i++ {
		r = sdfg.Report(sdfg.EkinhDirectiveSource)
	}
	b.ReportMetric(r.Ratio(), "clean_directive_ratio")
	b.ReportMetric(sdfg.PaperReport().Ratio(), "paper_dycore_ratio")
}

// BenchmarkSustainedBandwidth regenerates the §5.2 bandwidth figure: the
// effective DRAM bandwidth per configuration, with the aggregate PiB/s of
// the hero run.
func BenchmarkSustainedBandwidth(b *testing.B) {
	h := machine.HopperGPU()
	oneKm := config.OneKm()
	var agg float64
	for i := 0; i < b.N; i++ {
		cells := oneKm.AtmosCells() / 20480
		bytes := cells * 90 * 8 * 4
		agg = h.EffBandwidth(bytes) * 20480
	}
	b.ReportMetric(agg/(1<<50), "aggregate_pib_per_s_20480")
	// Also measure a real device's sustained bandwidth at laptop scale.
	g := grid.New(grid.R2B(3))
	vert := vertical.NewAtmosphere(20, 30000, 150)
	dev := exec.NewDevice(h)
	m := atmos.NewModel(g, vert, dev)
	m.State.InitBaroclinic(288, 20)
	bc := atmos.SurfaceBC{Tsfc: make([]float64, g.NCells), IsWater: make([]bool, g.NCells)}
	for c := range bc.Tsfc {
		bc.Tsfc[c] = 288
	}
	m.Step(120, bc)
	b.ReportMetric(dev.SustainedBandwidth()/(1<<40), "sustained_tib_per_s")
}

// BenchmarkRestartIO regenerates the §7 I/O measurements: real multi-file
// round-trip at laptop scale plus the projected paper-scale rates.
func BenchmarkRestartIO(b *testing.B) {
	sim, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "icoearth-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		bytes, err = sim.Checkpoint(dir, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Restore(dir); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(2 * bytes)
	fs := restart.JupiterFS()
	b.ReportMetric(fs.WriteRate(2579)/restart.GiB, "paper_write_gib_per_s")
	b.ReportMetric(fs.ReadRate(2579, true)/restart.GiB, "paper_read_gib_per_s")
}

// BenchmarkTauPracticalLimit regenerates the §4 τ-limit analysis.
func BenchmarkTauPracticalLimit(b *testing.B) {
	var pts []perf.TauLimitPoint
	for i := 0; i < b.N; i++ {
		pts = perf.TauLimit([]float64{40})
	}
	b.ReportMetric(pts[0].Tau, "tau_limit_40km")
	b.ReportMetric(float64(pts[0].Superchips), "chips_limit_40km")
}

// BenchmarkCoupledStepWallClock measures the real wall-clock cost of one
// coupled window at laptop scale (the library's own throughput). Its two
// custom metrics are the repo's gated headline numbers: the achieved
// temporal compression (simulated days per wall-clock day, the paper's
// τ) and the atmosphere cell-update rate.
func BenchmarkCoupledStepWallClock(b *testing.B) {
	sim, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.ES.StepWindow(); err != nil {
			b.Fatal(err)
		}
	}
	wall := b.Elapsed().Seconds()
	b.ReportMetric(sim.ES.SimTime()/wall, "tau_simdays_per_day")
	atmSteps := sim.ES.SimTime() / sim.ES.Cfg.AtmDt
	b.ReportMetric(float64(sim.ES.G.NCells)*atmSteps/wall, "cells_per_sec")
	// The paper's coupling-wait story: the atmosphere should (almost)
	// never wait for the ocean side. Reported on every host, so the gated
	// LowerIsBetter policy engages even where the speedup benches skip.
	b.ReportMetric(sim.ES.AtmWaitFrac(), "atm_wait_frac")
}

// BenchmarkStepWindow is the tracing layer's overhead contract: an
// untraced coupled window, with allocations reported so benchgate's
// zero-tolerance allocs/op policy proves the disabled tracer's nil-check
// fast path adds no heap traffic to the hot loop. trace_overhead_frac is
// the measured worst-case cost of the disabled instrumentation as a
// fraction of the window's wall time — the "<1% when off" guarantee —
// computed as (trace ops one traced window records) × (measured
// disabled-path cost per op) / (untraced window wall time).
func BenchmarkStepWindow(b *testing.B) {
	sim, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.ES.StepWindow(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	windowNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Count how many trace records one traced window emits.
	traced, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.New()
	traced.ES.SetTracer(tr)
	if err := traced.ES.StepWindow(); err != nil {
		b.Fatal(err)
	}
	ops := float64(tr.EventCount())

	// Measure the disabled fast path's per-record cost: a Start/End pair
	// on a nil track, which upper-bounds every nil-receiver trace call.
	var tk *trace.Track
	const probes = 1 << 20
	t0 := time.Now()
	for i := 0; i < probes; i++ {
		tk.End("op", tk.Start())
	}
	perOpNs := float64(time.Since(t0).Nanoseconds()) / probes
	b.ReportMetric(ops*perOpNs/windowNs, "trace_overhead_frac")
}

// BenchmarkStepWindowSpeedup is the coupled-window version of the worker
// pool's acceptance contract: wall time of a full coupled window (dycore,
// physics, transport, ocean, ice, bgc, exchanges) at pool width 1 over
// width 4, reported as the gated parallel_speedup_x metric. Skips below
// 4 cores — the ratio is meaningless when the widths share one thread.
func BenchmarkStepWindowSpeedup(b *testing.B) {
	if runtime.NumCPU() < 4 {
		b.Skipf("need ≥4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	elapsed := func(width int) time.Duration {
		sim, err := NewSimulation(Options{Workers: width})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.ES.StepWindow(); err != nil { // warm scratch + pool
			b.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			if err := sim.ES.StepWindow(); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0)
	}
	serial := elapsed(1)
	parallel := elapsed(4)
	sched.SetWorkers(0)
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "parallel_speedup_x")
}

// BenchmarkStepWindowOverlapSpeedup is the functional-parallelism
// acceptance contract (§5.1): wall time of the coupled window with the
// ocean+BGC side serialised after the atmosphere (NoOverlap) over the
// overlapped default, reported as the gated overlap_speedup_x metric
// (floor 1.2). Both runs use the same worker width, so the ratio
// isolates the side-level overlap from the intra-kernel parallelism, and
// atm_wait_frac from the overlapped run rides along as the paper's
// wait-fraction diagnostic. The ocean runs at the atmosphere's timestep
// so the CPU side genuinely fills the coupling window, as in the paper's
// configuration — with the laptop default (one ocean step per window)
// the CPU side is ~13% of the window and even perfect overlap could not
// reach the floor. Skips below 4 cores, where the two sides cannot
// genuinely execute at the same time.
func BenchmarkStepWindowOverlapSpeedup(b *testing.B) {
	if runtime.NumCPU() < 4 {
		b.Skipf("need ≥4 CPUs for an overlap measurement, have %d", runtime.NumCPU())
	}
	var overlapped *Simulation
	elapsed := func(noOverlap bool) time.Duration {
		sim, err := NewSimulation(Options{Workers: 2, OceanDt: 120, NoOverlap: noOverlap})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.ES.StepWindow(); err != nil { // warm scratch + pool
			b.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			if err := sim.ES.StepWindow(); err != nil {
				b.Fatal(err)
			}
		}
		if !noOverlap {
			overlapped = sim
		}
		return time.Since(t0)
	}
	sequential := elapsed(true)
	overlap := elapsed(false)
	sched.SetWorkers(0)
	b.ReportMetric(sequential.Seconds()/overlap.Seconds(), "overlap_speedup_x")
	b.ReportMetric(overlapped.ES.AtmWaitFrac(), "atm_wait_frac")
}

// BenchmarkOceanSolverScaling measures the distributed CG solver (the
// ocean's global 2-D system) across rank counts: the allreduce count per
// solve is the quantity that throttles the ocean at extreme scale (§7).
func BenchmarkOceanSolverScaling(b *testing.B) {
	g := grid.New(grid.R2B(3))
	mask := grid.NewMask(g)
	vert := vertical.NewOcean(8, 4000, 60)
	s := ocean.NewState(g, mask, vert)
	s.InitAnalytic()
	op := ocean.NewBarotropicOp(s, 600)
	rhs := make([]float64, s.NOcean())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.01)
	}
	for _, nr := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks-%d", nr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if nr == 1 {
					eta := make([]float64, s.NOcean())
					if _, err := op.Solve(rhs, eta, 1e-8, 4000); err != nil {
						b.Fatal(err)
					}
					continue
				}
				cuts, err := ocean.AlignedCuts(s, nr)
				if err != nil {
					b.Fatal(err)
				}
				d, err := grid.DecomposeAt(g, cuts)
				if err != nil {
					b.Fatal(err)
				}
				var allreduces, haloBytes int64
				var overlapFrac float64
				var mu sync.Mutex
				w := par.NewWorld(nr)
				w.Run(func(c *par.Comm) {
					db, err := ocean.NewDistBarotropic(s, 600, d, c)
					if err != nil {
						b.Error(err)
						return
					}
					eta := make([]float64, s.NOcean())
					if _, err := db.Solve(rhs, eta, 1e-8, 4000); err != nil {
						b.Error(err)
					}
					mu.Lock()
					haloBytes += db.CG.HaloBytes
					if c.Rank == 0 {
						allreduces = int64(db.CG.Allreduces)
						overlapFrac = db.CG.OverlapFrac()
					}
					mu.Unlock()
				})
				b.ReportMetric(float64(allreduces), "allreduces_per_solve")
				if nr == 4 {
					// One barotropic solve per coupling window at the
					// default configuration: per-solve traffic is the
					// per-window halo volume the paper's network model
					// prices. Both are structural counts (partition +
					// iteration trajectory), not timings, so the gate can
					// hold them tight.
					b.ReportMetric(float64(haloBytes), "halo_bytes_per_window")
					b.ReportMetric(overlapFrac, "halo_overlap_frac")
				}
			}
		})
	}
}

// BenchmarkRealCodeScaling runs the *real* coupled model across grid sizes
// and reports the simulated-machine τ of each: the laptop-scale
// counterpart of Figure 4's scaling story, produced by actual kernels on
// the device model rather than the analytic projection.
func BenchmarkRealCodeScaling(b *testing.B) {
	for _, lev := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("R2B%d", lev), func(b *testing.B) {
			if testing.Short() && lev > 2 {
				b.Skip("R2B3 builds and runs a full-size coupled simulation")
			}
			var tau float64
			for i := 0; i < b.N; i++ {
				sim, err := NewSimulation(Options{GridLevel: lev})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Run(time.Hour); err != nil {
					b.Fatal(err)
				}
				tau = sim.Tau()
			}
			b.ReportMetric(tau, "tau_simulated")
		})
	}
}

// BenchmarkSupervisedWindow measures the cost of running coupled windows
// under the fault-tolerant supervisor with per-window checkpointing — the
// overhead a production chaos-hardened campaign pays over bare
// StepWindow. checkpoint_ns_per_window is the stable custom metric for
// the checkpoint share of that overhead.
func BenchmarkSupervisedWindow(b *testing.B) {
	sim, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "icoearth-supervised")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sv, err := coupler.NewSupervisor(sim.ES, coupler.SuperviseConfig{Dir: dir, CheckpointEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := sv.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.CheckpointNs)/float64(b.N), "checkpoint_ns_per_window")
}

// BenchmarkDurableCheckpointWindow measures the durable (fsynced,
// generation-manifest) checkpoint lane in its production shape: async,
// overlapped with the next coupling window. durable_ckpt_ns_per_window is
// the UNHIDDEN per-window cost — the join of the previous write plus the
// snapshot clone and dispatch — and ckpt_bytes_per_window the durable
// payload published per window; both are gated (compare.go).
func BenchmarkDurableCheckpointWindow(b *testing.B) {
	sim, err := NewSimulation(Options{})
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "icoearth-durable")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sv, err := coupler.NewSupervisor(sim.ES, coupler.SuperviseConfig{
		Dir: dir, CheckpointEvery: 1, Async: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := sv.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.CheckpointNs)/float64(b.N), "durable_ckpt_ns_per_window")
	b.ReportMetric(float64(rep.CheckpointBytes)/float64(b.N), "ckpt_bytes_per_window")
}

// BenchmarkRecovery measures one full fault-recovery cycle: a window that
// crashes, rolls back to the last checkpoint and is retried to success.
func BenchmarkRecovery(b *testing.B) {
	if testing.Short() {
		b.Skip("builds a coupled simulation per iteration")
	}
	var rollbackNs float64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulation(Options{})
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "icoearth-recovery")
		if err != nil {
			b.Fatal(err)
		}
		fired := false
		sim.ES.GPU.SetLaunchHook(func(string) {
			if !fired {
				fired = true
				panic("bench: injected crash")
			}
		})
		sv, err := coupler.NewSupervisor(sim.ES, coupler.SuperviseConfig{
			Dir: dir, BackoffBase: time.Nanosecond, BackoffMax: time.Nanosecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		rep, err := sv.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Rollbacks != 1 {
			b.Fatalf("rollbacks = %d", rep.Rollbacks)
		}
		rollbackNs = float64(time.Since(t0).Nanoseconds())
		os.RemoveAll(dir)
	}
	b.ReportMetric(rollbackNs, "recovery_cycle_ns")
}

// BenchmarkCheckpointScaling measures real multi-file checkpoint write
// rates across writer counts (the §6.4 writer-subset trade-off at laptop
// scale).
func BenchmarkCheckpointScaling(b *testing.B) {
	sim, err := NewSimulation(Options{GridLevel: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, nfiles := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("files-%d", nfiles), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "ckpt")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			var n int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err = sim.Checkpoint(dir, nfiles)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(n)
		})
	}
}
