package icoearth

import (
	"fmt"
	"testing"
)

// TestKernelSeamMatrixBitIdentical drives the full coupled system across
// the kernels {gen,hand} × workers {1,4} × overlap {on,off} matrix and
// demands one identical hex-float fingerprint of the conserved totals
// and simulated time from every cell. This is the end-to-end half of the
// bit-identity acceptance: the generated kernels are not just parity at
// the kernel boundary, they are indistinguishable through three coupling
// windows of the whole Earth system.
func TestKernelSeamMatrixBitIdentical(t *testing.T) {
	run := func(kernels string, workers int, noOverlap bool) string {
		sim, err := NewSimulation(Options{
			GridLevel:        1,
			AtmosphereLevels: 5,
			OceanLevels:      4,
			Kernels:          kernels,
			Workers:          workers,
			NoOverlap:        noOverlap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := sim.ES.StepWindow(); err != nil {
				t.Fatal(err)
			}
		}
		return fmt.Sprintf("%x %x %x",
			sim.ES.TotalWater(), sim.ES.TotalCarbon(), sim.ES.SimTime())
	}

	want := run("gen", 1, false)
	for _, kernels := range []string{"gen", "hand"} {
		for _, workers := range []int{1, 4} {
			for _, noOverlap := range []bool{false, true} {
				if kernels == "gen" && workers == 1 && !noOverlap {
					continue
				}
				got := run(kernels, workers, noOverlap)
				if got != want {
					t.Errorf("kernels=%s workers=%d noOverlap=%v: fingerprint %s != reference %s",
						kernels, workers, noOverlap, got, want)
				}
			}
		}
	}
}
